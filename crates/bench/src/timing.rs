//! Minimal timing harness (criterion is unavailable offline).
//!
//! Each benchmark auto-calibrates an inner batch size so one timed
//! sample lasts at least `min_batch`, takes `samples` samples, and
//! reports the **median** ns per operation — robust to scheduler noise
//! without criterion's statistical machinery. The `perf` binary
//! serializes these samples into `BENCH_mapping.json` so successive PRs
//! have a perf trajectory to regress against.

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name (stable across PRs — the JSON key).
    pub name: String,
    /// Median nanoseconds per operation.
    pub median_ns: f64,
    /// Minimum observed ns/op (best case, for reference).
    pub min_ns: f64,
    /// Inner iterations per timed sample.
    pub batch: u64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// Harness knobs.
#[derive(Clone, Copy, Debug)]
pub struct BenchOpts {
    /// Target minimum duration of one timed sample.
    pub min_batch: Duration,
    /// Timed samples per benchmark.
    pub samples: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            min_batch: Duration::from_millis(20),
            samples: 15,
        }
    }
}

impl BenchOpts {
    /// CI-sized: fast smoke numbers, still real measurements.
    pub fn fast() -> Self {
        Self {
            min_batch: Duration::from_millis(2),
            samples: 5,
        }
    }
}

/// Times `f`, auto-calibrating the batch size; returns the sample.
///
/// `f` should perform one operation and return something consumable by
/// [`std::hint::black_box`] so the optimizer cannot elide the work.
pub fn bench_ns<R>(name: &str, opts: &BenchOpts, mut f: impl FnMut() -> R) -> Sample {
    // Calibrate: grow the batch until one batch exceeds min_batch.
    let mut batch: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let dt = t.elapsed();
        if dt >= opts.min_batch || batch >= 1 << 30 {
            break;
        }
        // Aim slightly past the target to converge in few steps.
        let scale = opts.min_batch.as_secs_f64() / dt.as_secs_f64().max(1e-9);
        batch = (batch as f64 * (scale * 1.3).max(2.0)).ceil() as u64;
    }
    let mut per_op: Vec<f64> = (0..opts.samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_ns = per_op[per_op.len() / 2];
    Sample {
        name: name.to_string(),
        median_ns,
        min_ns: per_op[0],
        batch,
        samples: per_op.len(),
    }
}

/// Renders samples as a stdout table.
pub fn print_samples(samples: &[Sample]) {
    let w = samples
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    println!(
        "{:w$}  {:>14}  {:>14}  {:>8}",
        "name", "median", "min", "batch"
    );
    for s in samples {
        println!(
            "{:w$}  {:>14}  {:>14}  {:>8}",
            s.name,
            fmt_ns(s.median_ns),
            fmt_ns(s.min_ns),
            s.batch
        );
    }
}

/// Human-readable nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Serializes samples (plus free-form extra numeric metrics) as a JSON
/// object — hand-rolled, since serde is unavailable offline.
pub fn to_json(samples: &[Sample], extras: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": {\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {:.1}, \"min_ns\": {:.1}, \"batch\": {}, \"samples\": {}}}{}\n",
            s.name,
            s.median_ns,
            s.min_ns,
            s.batch,
            s.samples,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    if !extras.is_empty() {
        out.push_str(",\n  \"metrics\": {\n");
        for (i, (k, v)) in extras.iter().enumerate() {
            out.push_str(&format!(
                "    \"{k}\": {v:.4}{}\n",
                if i + 1 < extras.len() { "," } else { "" }
            ));
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let opts = BenchOpts {
            min_batch: Duration::from_micros(50),
            samples: 3,
        };
        let s = bench_ns("spin", &opts, || {
            (0..100u64).map(std::hint::black_box).sum::<u64>()
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.batch >= 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let s = Sample {
            name: "x".into(),
            median_ns: 12.5,
            min_ns: 10.0,
            batch: 8,
            samples: 3,
        };
        let j = to_json(&[s], &[("speedup".into(), 2.0)]);
        assert!(j.contains("\"x\""));
        assert!(j.contains("\"median_ns\": 12.5"));
        assert!(j.contains("\"speedup\": 2.0000"));
        assert!(j.trim_end().ends_with('}'));
    }
}
