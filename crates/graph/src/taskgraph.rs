//! The paper's MPI task graph `Gt`.
//!
//! `Gt` is *directed*: `(t1, t2) ∈ Et` iff `t1` sends a message to `t2`,
//! and `c(t1, t2)` is the volume of that message. The WH/TH metrics are
//! undirected (hop distance is symmetric), so the mapping algorithms
//! traverse a symmetrized view while the congestion metrics route each
//! directed message individually. [`TaskGraph`] keeps both views
//! consistent and caches per-task send/receive volumes for the
//! `t_MSRV` (maximum send+receive volume) seed of Algorithm 1.

use crate::csr::{Graph, GraphBuilder};

/// A directed task communication graph plus its symmetrized view.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    directed: Graph,
    reversed: Graph,
    sym: Graph,
    send_vol: Vec<f64>,
    recv_vol: Vec<f64>,
    send_msgs: Vec<u32>,
    recv_msgs: Vec<u32>,
}

impl Default for TaskGraph {
    /// The empty task graph (0 tasks, 0 messages).
    fn default() -> Self {
        Self {
            directed: Graph::empty(0),
            reversed: Graph::empty(0),
            sym: Graph::empty(0),
            send_vol: Vec::new(),
            recv_vol: Vec::new(),
            send_msgs: Vec::new(),
            recv_msgs: Vec::new(),
        }
    }
}

/// Reusable buffers for rebuilding [`TaskGraph`]s in place
/// ([`TaskGraph::rebuild_from_messages`] /
/// [`TaskGraph::group_quotient_into`]). One warm scratch makes repeated
/// rebuilds allocation-free — the multilevel coarsening hierarchy's
/// steady-state contract (DESIGN.md §12).
#[derive(Default)]
pub struct TaskGraphScratch {
    fwd: GraphBuilder,
    rev: GraphBuilder,
    weights: Vec<f64>,
}

impl TaskGraphScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGraph {
    /// Builds from directed `(sender, receiver, volume)` message edges.
    ///
    /// Duplicate edges are merged (volumes summed) — two logical
    /// messages between the same pair in the same phase traverse the
    /// same route and count once for MMC, as in the paper's model where
    /// `Et` is a set. Self-loops are dropped. `task_weights` defaults to
    /// uniform `1.0` (one processor slot per task).
    pub fn from_messages(
        num_tasks: usize,
        messages: impl IntoIterator<Item = (u32, u32, f64)>,
        task_weights: Option<Vec<f64>>,
    ) -> Self {
        let mut tg = TaskGraph::default();
        tg.rebuild_from_messages(
            num_tasks,
            messages,
            task_weights.as_deref(),
            &mut TaskGraphScratch::new(),
        );
        tg
    }

    /// Rebuilds `self` in place from directed message edges, reusing
    /// every internal buffer (same semantics as
    /// [`from_messages`](Self::from_messages)). Allocation-free once
    /// `self` and `scratch` are warm.
    pub fn rebuild_from_messages(
        &mut self,
        num_tasks: usize,
        messages: impl IntoIterator<Item = (u32, u32, f64)>,
        task_weights: Option<&[f64]>,
        scratch: &mut TaskGraphScratch,
    ) {
        let b = &mut scratch.fwd;
        b.reset(num_tasks);
        for (s, t, v) in messages {
            b.add_edge(s, t, v);
        }
        if let Some(w) = task_weights {
            b.set_vertex_weights_from(w.iter().copied());
        }
        b.build_directed_into(&mut self.directed);
        // The reversed and symmetric views derive from the merged
        // directed CSR in O(V + E) — no second dedup over raw edges.
        scratch
            .rev
            .transpose_into(&self.directed, &mut self.reversed);
        self.directed.symmetrize_into(&self.reversed, &mut self.sym);
        self.send_vol.clear();
        self.send_vol.resize(num_tasks, 0.0);
        self.recv_vol.clear();
        self.recv_vol.resize(num_tasks, 0.0);
        self.send_msgs.clear();
        self.send_msgs.resize(num_tasks, 0);
        self.recv_msgs.clear();
        self.recv_msgs.resize(num_tasks, 0);
        for (s, t, v) in self.directed.all_edges() {
            self.send_vol[s as usize] += v;
            self.recv_vol[t as usize] += v;
            self.send_msgs[s as usize] += 1;
            self.recv_msgs[t as usize] += 1;
        }
    }

    /// Aggregates tasks into `num_groups` super-tasks: directed edge
    /// volumes are summed across group boundaries, intra-group messages
    /// disappear (they become node-local), and group weights are the
    /// sums of member task weights. When `count_weighted` is set, each
    /// fine message contributes `1.0` instead of its volume — the view
    /// Algorithm 3's MMC variant refines, where congestion counts
    /// *messages*, not words.
    pub fn group_quotient(
        &self,
        group_of: &[u32],
        num_groups: usize,
        count_weighted: bool,
    ) -> TaskGraph {
        let mut out = TaskGraph::default();
        self.group_quotient_into(
            group_of,
            num_groups,
            count_weighted,
            &mut out,
            &mut TaskGraphScratch::new(),
        );
        out
    }

    /// [`group_quotient`](Self::group_quotient) into an existing graph,
    /// reusing its buffers. Allocation-free once `out` and `scratch`
    /// are warm — the coarsening hierarchy's per-level build.
    pub fn group_quotient_into(
        &self,
        group_of: &[u32],
        num_groups: usize,
        count_weighted: bool,
        out: &mut TaskGraph,
        scratch: &mut TaskGraphScratch,
    ) {
        assert_eq!(group_of.len(), self.num_tasks());
        let mut weights = std::mem::take(&mut scratch.weights);
        weights.clear();
        weights.resize(num_groups, 0.0);
        for t in 0..self.num_tasks() {
            weights[group_of[t] as usize] += self.task_weight(t as u32);
        }
        let messages = self.messages().filter_map(|(s, t, v)| {
            let (gs, gt) = (group_of[s as usize], group_of[t as usize]);
            (gs != gt).then_some((gs, gt, if count_weighted { 1.0 } else { v }))
        });
        out.rebuild_from_messages(num_groups, messages, Some(&weights), scratch);
        scratch.weights = weights;
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.directed.num_vertices()
    }

    /// Number of directed message edges `|Et|`.
    #[inline]
    pub fn num_messages(&self) -> usize {
        self.directed.num_edges()
    }

    /// The directed message graph (one edge per message).
    #[inline]
    pub fn directed(&self) -> &Graph {
        &self.directed
    }

    /// The symmetrized graph: weight of `{u, v}` is
    /// `c(u→v) + c(v→u)`, stored in both directions.
    #[inline]
    pub fn symmetric(&self) -> &Graph {
        &self.sym
    }

    /// Iterates directed messages `(sender, receiver, volume)`.
    pub fn messages(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.directed.all_edges()
    }

    /// Iterates `(sender, volume)` over messages *received* by `t`.
    pub fn in_edges(&self, t: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.reversed.edges(t)
    }

    /// Iterates `(receiver, volume)` over messages *sent* by `t`.
    pub fn out_edges(&self, t: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.directed.edges(t)
    }

    /// Total communication volume (sum of message volumes).
    pub fn total_volume(&self) -> f64 {
        self.send_vol.iter().sum()
    }

    /// Volume sent by `t`.
    #[inline]
    pub fn send_volume(&self, t: u32) -> f64 {
        self.send_vol[t as usize]
    }

    /// Volume received by `t`.
    #[inline]
    pub fn recv_volume(&self, t: u32) -> f64 {
        self.recv_vol[t as usize]
    }

    /// Send + receive volume of `t` (the MSRV quantity of Algorithm 1).
    #[inline]
    pub fn srv(&self, t: u32) -> f64 {
        self.send_vol[t as usize] + self.recv_vol[t as usize]
    }

    /// Number of messages sent by `t`.
    #[inline]
    pub fn send_messages(&self, t: u32) -> u32 {
        self.send_msgs[t as usize]
    }

    /// Number of messages received by `t`.
    #[inline]
    pub fn recv_messages(&self, t: u32) -> u32 {
        self.recv_msgs[t as usize]
    }

    /// The task with maximum send+receive volume (ties → smaller id);
    /// `None` for an empty graph.
    pub fn task_with_max_srv(&self) -> Option<u32> {
        (0..self.num_tasks() as u32).max_by(|&a, &b| {
            self.srv(a)
                .partial_cmp(&self.srv(b))
                .unwrap()
                .then(b.cmp(&a)) // prefer smaller id on ties
        })
    }

    /// Computation weight (processor demand) of task `t`.
    #[inline]
    pub fn task_weight(&self, t: u32) -> f64 {
        self.directed.vertex_weight(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> TaskGraph {
        // 0 sends to 1,2,3; 3 sends back to 0.
        TaskGraph::from_messages(
            4,
            [(0, 1, 5.0), (0, 2, 3.0), (0, 3, 2.0), (3, 0, 7.0)],
            None,
        )
    }

    #[test]
    fn volumes_and_message_counts() {
        let tg = star();
        assert_eq!(tg.num_tasks(), 4);
        assert_eq!(tg.num_messages(), 4);
        assert_eq!(tg.send_volume(0), 10.0);
        assert_eq!(tg.recv_volume(0), 7.0);
        assert_eq!(tg.srv(0), 17.0);
        assert_eq!(tg.send_messages(0), 3);
        assert_eq!(tg.recv_messages(1), 1);
        assert_eq!(tg.total_volume(), 17.0);
    }

    #[test]
    fn msrv_task_is_hub() {
        assert_eq!(star().task_with_max_srv(), Some(0));
    }

    #[test]
    fn msrv_tie_prefers_smaller_id() {
        let tg = TaskGraph::from_messages(3, [(0, 1, 4.0), (2, 1, 4.0)], None);
        // srv: t0=4, t1=8, t2=4 → t1; then equal case:
        assert_eq!(tg.task_with_max_srv(), Some(1));
        let tg = TaskGraph::from_messages(2, [(0, 1, 4.0)], None);
        // both have srv 4.0 → smaller id
        assert_eq!(tg.task_with_max_srv(), Some(0));
    }

    #[test]
    fn symmetric_view_combines_volumes() {
        let tg = star();
        assert_eq!(tg.symmetric().edge_weight_between(0, 3), Some(9.0));
        assert_eq!(tg.symmetric().edge_weight_between(3, 0), Some(9.0));
        assert_eq!(tg.symmetric().edge_weight_between(1, 0), Some(5.0));
    }

    #[test]
    fn duplicate_messages_merge() {
        let tg = TaskGraph::from_messages(2, [(0, 1, 1.0), (0, 1, 2.0)], None);
        assert_eq!(tg.num_messages(), 1);
        assert_eq!(tg.send_volume(0), 3.0);
    }

    #[test]
    fn task_weights_flow_through() {
        let tg = TaskGraph::from_messages(2, [(0, 1, 1.0)], Some(vec![2.0, 3.0]));
        assert_eq!(tg.task_weight(0), 2.0);
        assert_eq!(tg.task_weight(1), 3.0);
    }

    #[test]
    fn empty_graph_has_no_msrv() {
        let tg = TaskGraph::from_messages(0, [], None);
        assert_eq!(tg.task_with_max_srv(), None);
    }

    #[test]
    fn in_and_out_edges_are_duals() {
        let tg = star();
        let ins: Vec<(u32, f64)> = tg.in_edges(0).collect();
        assert_eq!(ins, vec![(3, 7.0)]);
        let outs: Vec<(u32, f64)> = tg.out_edges(0).collect();
        assert_eq!(outs.len(), 3);
        assert!(tg.in_edges(1).eq([(0, 5.0)]));
    }

    #[test]
    fn quotient_sums_cross_group_volume_and_drops_internal() {
        let tg = star();
        // groups: {0,1} -> 0, {2,3} -> 1
        let q = tg.group_quotient(&[0, 0, 1, 1], 2, false);
        assert_eq!(q.num_tasks(), 2);
        // 0->2 (3.0) and 0->3 (2.0) merge into group edge 0->1 (5.0);
        // 3->0 (7.0) becomes 1->0; 0->1 vanishes (internal).
        assert_eq!(q.send_volume(0), 5.0);
        assert_eq!(q.send_volume(1), 7.0);
        assert_eq!(q.num_messages(), 2);
        assert_eq!(q.task_weight(0), 2.0);
    }

    #[test]
    fn count_weighted_quotient_counts_messages() {
        let tg = star();
        let q = tg.group_quotient(&[0, 0, 1, 1], 2, true);
        // Two fine messages 0->2, 0->3 cross: weight 2.0.
        assert_eq!(q.send_volume(0), 2.0);
        assert_eq!(q.send_volume(1), 1.0);
    }
}
