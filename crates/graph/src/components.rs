//! Connected components of (symmetrized) graphs.
//!
//! Algorithm 1 needs them when the task graph is disconnected: "a task
//! with the maximum communication volume from one of the disconnected
//! components is chosen" as the next seed.

use crate::bfs::Bfs;
use crate::csr::Graph;

/// Component labelling of an undirected graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` = component id in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Vertices of component `c` (allocates; intended for small graphs
    /// or test/diagnostic paths).
    pub fn members(&self, c: u32) -> Vec<u32> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Sizes of all components.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count];
        for &l in &self.label {
            s[l as usize] += 1;
        }
        s
    }
}

/// Labels connected components by repeated BFS. The graph is assumed to
/// be symmetric (built with [`crate::GraphBuilder::build_symmetric`]).
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut bfs = Bfs::new(n);
    for v in 0..n as u32 {
        if label[v as usize] != u32::MAX {
            continue;
        }
        bfs.start([v]);
        while let Some(ev) = bfs.next(g) {
            label[ev.vertex as usize] = count;
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    #[test]
    fn splits_two_triangles_and_isolated() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 0, 1.0);
        b.add_edge(3, 4, 1.0)
            .add_edge(4, 5, 1.0)
            .add_edge(5, 3, 1.0);
        let g = b.build_symmetric();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label[0], c.label[2]);
        assert_eq!(c.label[3], c.label[5]);
        assert_ne!(c.label[0], c.label[3]);
        assert_eq!(c.members(c.label[6]), vec![6]);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v, 1.0);
            }
        }
        let c = connected_components(&b.build_symmetric());
        assert_eq!(c.count, 1);
    }

    #[test]
    fn edgeless_graph_is_all_singletons() {
        let c = connected_components(&Graph::empty(5));
        assert_eq!(c.count, 5);
        assert_eq!(c.sizes(), vec![1; 5]);
    }
}
