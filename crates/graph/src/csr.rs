//! Immutable CSR graphs and their builder.

/// An immutable graph in compressed sparse row form.
///
/// Vertices are dense `u32` ids. Every edge carries an `f64` weight
/// (communication volume for task graphs, bandwidth for topology
/// graphs); every vertex carries an `f64` weight (task load / node
/// capacity). Whether the graph is directed is a property of how it was
/// built — the structure itself just stores out-adjacency.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    ewgt: Vec<f64>,
    vwgt: Vec<f64>,
}

impl Graph {
    /// Builds directly from CSR arrays. `xadj.len() == vwgt.len() + 1`,
    /// `adj.len() == ewgt.len() == xadj[last]`.
    pub fn from_csr(xadj: Vec<usize>, adj: Vec<u32>, ewgt: Vec<f64>, vwgt: Vec<f64>) -> Self {
        assert_eq!(xadj.len(), vwgt.len() + 1, "xadj/vwgt length mismatch");
        assert_eq!(adj.len(), ewgt.len(), "adj/ewgt length mismatch");
        assert_eq!(*xadj.last().unwrap(), adj.len(), "xadj end mismatch");
        debug_assert!(xadj.windows(2).all(|w| w[0] <= w[1]), "xadj not sorted");
        Self {
            xadj,
            adj,
            ewgt,
            vwgt,
        }
    }

    /// A graph with `n` isolated unit-weight vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            xadj: vec![0; n + 1],
            adj: Vec::new(),
            ewgt: Vec::new(),
            vwgt: vec![1.0; n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Edge weights of `v`'s out-edges, parallel to [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: u32) -> &[f64] {
        &self.ewgt[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Iterates `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn edges(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Iterates every stored edge as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> f64 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[f64] {
        &self.vwgt
    }

    /// Replaces all vertex weights (must match vertex count).
    pub fn set_vertex_weights(&mut self, vwgt: Vec<f64>) {
        assert_eq!(vwgt.len(), self.num_vertices());
        self.vwgt = vwgt;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Sum of all stored edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.ewgt.iter().sum()
    }

    /// Sum of `v`'s out-edge weights.
    pub fn weighted_degree(&self, v: u32) -> f64 {
        self.edge_weights(v).iter().sum()
    }

    /// Looks up the weight of edge `(u, v)` by scanning `u`'s list.
    pub fn edge_weight_between(&self, u: u32, v: u32) -> Option<f64> {
        self.edges(u).find(|&(n, _)| n == v).map(|(_, w)| w)
    }

    /// Extracts the subgraph induced by `vertices` (edges with both
    /// endpoints inside). Returns the subgraph — whose vertex `i`
    /// corresponds to `vertices[i]` — so callers keep the id mapping.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> Graph {
        let mut local = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            debug_assert!(local[v as usize] == u32::MAX, "duplicate vertex");
            local[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            for (n, w) in self.edges(v) {
                let ln = local[n as usize];
                if ln != u32::MAX {
                    b.add_edge(i as u32, ln, w);
                }
            }
        }
        b.vertex_weights(vertices.iter().map(|&v| self.vertex_weight(v)).collect());
        b.build_directed()
    }
}

/// Accumulates edge triplets and produces a [`Graph`].
///
/// Duplicate `(u, v)` entries are merged by summing weights; self-loops
/// are dropped (neither metric in the paper counts them — a task does
/// not message itself over the network).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    vwgt: Option<Vec<f64>>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            vwgt: None,
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `(u, v)` with weight `w`.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) -> &mut Self {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v, w));
        self
    }

    /// Sets explicit vertex weights (defaults to all `1.0`).
    pub fn vertex_weights(&mut self, vwgt: Vec<f64>) -> &mut Self {
        assert_eq!(vwgt.len(), self.n);
        self.vwgt = Some(vwgt);
        self
    }

    /// Builds keeping edge directions (duplicates merged, loops dropped).
    pub fn build_directed(&self) -> Graph {
        self.build_inner(false)
    }

    /// Builds the symmetrized graph: for every pair `{u, v}` the combined
    /// weight `w(u→v) + w(v→u)` is stored in both directions. This is the
    /// paper's symmetric view of `Gt` used by WH-driven algorithms.
    pub fn build_symmetric(&self) -> Graph {
        self.build_inner(true)
    }

    fn build_inner(&self, symmetrize: bool) -> Graph {
        let n = self.n;
        // Collect (possibly mirrored) edges, drop self-loops.
        let mut triplets: Vec<(u32, u32, f64)> =
            Vec::with_capacity(self.edges.len() * if symmetrize { 2 } else { 1 });
        for &(u, v, w) in &self.edges {
            if u == v {
                continue;
            }
            triplets.push((u, v, w));
            if symmetrize {
                triplets.push((v, u, w));
            }
        }
        // Sort then merge duplicates.
        triplets.sort_unstable_by_key(|a| (a.0, a.1));
        let mut xadj = vec![0usize; n + 1];
        let mut adj = Vec::with_capacity(triplets.len());
        let mut ewgt = Vec::with_capacity(triplets.len());
        let mut i = 0;
        while i < triplets.len() {
            let (u, v, mut w) = triplets[i];
            let mut j = i + 1;
            while j < triplets.len() && triplets[j].0 == u && triplets[j].1 == v {
                w += triplets[j].2;
                j += 1;
            }
            adj.push(v);
            ewgt.push(w);
            xadj[u as usize + 1] += 1;
            i = j;
        }
        for k in 0..n {
            xadj[k + 1] += xadj[k];
        }
        let vwgt = self.vwgt.clone().unwrap_or_else(|| vec![1.0; n]);
        Graph::from_csr(xadj, adj, ewgt, vwgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> GraphBuilder {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0)
            .add_edge(1, 2, 3.0)
            .add_edge(2, 0, 4.0);
        b
    }

    #[test]
    fn directed_build_keeps_direction() {
        let g = triangle().build_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.edge_weight_between(2, 0), Some(4.0));
        assert_eq!(g.edge_weight_between(0, 2), None);
    }

    #[test]
    fn symmetric_build_mirrors_and_sums() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0)
            .add_edge(1, 0, 5.0)
            .add_edge(1, 2, 1.0);
        let g = b.build_symmetric();
        // 0<->1 combined weight 7, 1<->2 combined weight 1.
        assert_eq!(g.edge_weight_between(0, 1), Some(7.0));
        assert_eq!(g.edge_weight_between(1, 0), Some(7.0));
        assert_eq!(g.edge_weight_between(2, 1), Some(1.0));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn duplicates_merge_and_loops_drop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .add_edge(0, 0, 99.0);
        let g = b.build_directed();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight_between(0, 1), Some(3.5));
    }

    #[test]
    fn vertex_weights_default_and_explicit() {
        let g = triangle().build_directed();
        assert_eq!(g.vertex_weight(1), 1.0);
        assert_eq!(g.total_vertex_weight(), 3.0);
        let mut b = triangle();
        b.vertex_weights(vec![2.0, 3.0, 4.0]);
        let g = b.build_directed();
        assert_eq!(g.total_vertex_weight(), 9.0);
    }

    #[test]
    fn empty_graph_has_isolated_vertices() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let g = triangle().build_directed();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .add_edge(3, 4, 4.0);
        b.vertex_weights(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let g = b.build_symmetric();
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        // Only the 1-2 edge survives (3 links 2 and 4 but is excluded).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight_between(0, 1), Some(2.0));
        assert_eq!(sub.vertex_weight(2), 5.0);
    }

    #[test]
    fn weighted_degree_sums_out_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0).add_edge(0, 2, 3.0);
        let g = b.build_directed();
        assert_eq!(g.weighted_degree(0), 5.0);
        assert_eq!(g.weighted_degree(1), 0.0);
    }
}
