//! Immutable CSR graphs and their builder.

/// An immutable graph in compressed sparse row form.
///
/// Vertices are dense `u32` ids. Every edge carries an `f64` weight
/// (communication volume for task graphs, bandwidth for topology
/// graphs); every vertex carries an `f64` weight (task load / node
/// capacity). Whether the graph is directed is a property of how it was
/// built — the structure itself just stores out-adjacency.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    ewgt: Vec<f64>,
    vwgt: Vec<f64>,
}

impl Graph {
    /// Builds directly from CSR arrays. `xadj.len() == vwgt.len() + 1`,
    /// `adj.len() == ewgt.len() == xadj[last]`.
    pub fn from_csr(xadj: Vec<usize>, adj: Vec<u32>, ewgt: Vec<f64>, vwgt: Vec<f64>) -> Self {
        assert_eq!(xadj.len(), vwgt.len() + 1, "xadj/vwgt length mismatch");
        assert_eq!(adj.len(), ewgt.len(), "adj/ewgt length mismatch");
        assert_eq!(*xadj.last().unwrap(), adj.len(), "xadj end mismatch");
        debug_assert!(xadj.windows(2).all(|w| w[0] <= w[1]), "xadj not sorted");
        Self {
            xadj,
            adj,
            ewgt,
            vwgt,
        }
    }

    /// A graph with `n` isolated unit-weight vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            xadj: vec![0; n + 1],
            adj: Vec::new(),
            ewgt: Vec::new(),
            vwgt: vec![1.0; n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Edge weights of `v`'s out-edges, parallel to [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: u32) -> &[f64] {
        &self.ewgt[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Iterates `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn edges(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Iterates every stored edge as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> f64 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[f64] {
        &self.vwgt
    }

    /// Replaces all vertex weights (must match vertex count).
    pub fn set_vertex_weights(&mut self, vwgt: Vec<f64>) {
        assert_eq!(vwgt.len(), self.num_vertices());
        self.vwgt = vwgt;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Sum of all stored edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.ewgt.iter().sum()
    }

    /// Sum of `v`'s out-edge weights.
    pub fn weighted_degree(&self, v: u32) -> f64 {
        self.edge_weights(v).iter().sum()
    }

    /// Looks up the weight of edge `(u, v)` by scanning `u`'s list.
    pub fn edge_weight_between(&self, u: u32, v: u32) -> Option<f64> {
        self.edges(u).find(|&(n, _)| n == v).map(|(_, w)| w)
    }

    /// Builds the symmetrized view of `self` (a directed graph) into
    /// `out` given its [`transpose`](GraphBuilder::transpose_into):
    /// row `u` is the sorted merge of `self`'s and `transpose`'s rows,
    /// weights of shared neighbors summed — `w{u,v} = w(u→v) + w(v→u)`,
    /// stored in both directions, exactly
    /// [`GraphBuilder::build_symmetric`]'s semantics without
    /// re-deduplicating the raw edge list. Vertex weights copy from
    /// `self`. A pure function of the two inputs (needs no builder
    /// scratch), allocation-free once `out` is warm.
    pub fn symmetrize_into(&self, transpose: &Graph, out: &mut Graph) {
        let n = self.num_vertices();
        debug_assert_eq!(transpose.num_vertices(), n);
        out.xadj.clear();
        out.xadj.resize(n + 1, 0);
        out.adj.clear();
        out.ewgt.clear();
        for u in 0..n as u32 {
            let (da, dw) = (self.neighbors(u), self.edge_weights(u));
            let (ta, tw) = (transpose.neighbors(u), transpose.edge_weights(u));
            let (mut i, mut j) = (0usize, 0usize);
            while i < da.len() || j < ta.len() {
                let (v, w) = if j >= ta.len() || (i < da.len() && da[i] < ta[j]) {
                    let e = (da[i], dw[i]);
                    i += 1;
                    e
                } else if i >= da.len() || ta[j] < da[i] {
                    let e = (ta[j], tw[j]);
                    j += 1;
                    e
                } else {
                    let e = (da[i], dw[i] + tw[j]);
                    i += 1;
                    j += 1;
                    e
                };
                out.adj.push(v);
                out.ewgt.push(w);
            }
            out.xadj[u as usize + 1] = out.adj.len();
        }
        out.vwgt.clear();
        out.vwgt.extend_from_slice(&self.vwgt);
    }

    /// Extracts the subgraph induced by `vertices` (edges with both
    /// endpoints inside). Returns the subgraph — whose vertex `i`
    /// corresponds to `vertices[i]` — so callers keep the id mapping.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> Graph {
        let mut local = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            debug_assert!(local[v as usize] == u32::MAX, "duplicate vertex");
            local[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            for (n, w) in self.edges(v) {
                let ln = local[n as usize];
                if ln != u32::MAX {
                    b.add_edge(i as u32, ln, w);
                }
            }
        }
        b.vertex_weights(vertices.iter().map(|&v| self.vertex_weight(v)).collect());
        b.build_directed()
    }
}

/// Accumulates edge triplets and produces a [`Graph`].
///
/// Duplicate `(u, v)` entries are merged by summing weights; self-loops
/// are dropped (neither metric in the paper counts them — a task does
/// not message itself over the network). Adjacency lists come out in
/// ascending neighbor order.
///
/// The builder is **reusable**: [`reset`](Self::reset) clears it for a
/// new graph while keeping every internal buffer, and the
/// [`build_directed_into`](Self::build_directed_into) /
/// [`build_symmetric_into`](Self::build_symmetric_into) forms rebuild
/// an existing [`Graph`] in place. A warm builder/graph pair therefore
/// performs zero steady-state allocations — the contract the multilevel
/// coarsening hierarchy (DESIGN.md §12) is built on. Construction is
/// O(V + E + Σ deg·log deg) via a counting scatter with per-row
/// epoch-marked deduplication — no global edge sort.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    vwgt: Vec<f64>,
    has_vwgt: bool,
    // Build scratch (reused across builds; see the struct docs).
    cursor: Vec<usize>,
    mark: Vec<usize>,
    mark_epoch: Vec<u32>,
    epoch: u32,
    pairs: Vec<(u32, f64)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            ..Self::default()
        }
    }

    /// Clears the builder for a graph with `n` vertices, keeping every
    /// internal buffer (allocation-free once warm).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
        self.vwgt.clear();
        self.has_vwgt = false;
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `(u, v)` with weight `w`.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) -> &mut Self {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v, w));
        self
    }

    /// Sets explicit vertex weights (defaults to all `1.0`).
    pub fn vertex_weights(&mut self, vwgt: Vec<f64>) -> &mut Self {
        assert_eq!(vwgt.len(), self.n);
        self.vwgt = vwgt;
        self.has_vwgt = true;
        self
    }

    /// Sets explicit vertex weights from an iterator, reusing the
    /// internal buffer (the allocation-free form of
    /// [`vertex_weights`](Self::vertex_weights)).
    pub fn set_vertex_weights_from(&mut self, vwgt: impl IntoIterator<Item = f64>) -> &mut Self {
        self.vwgt.clear();
        self.vwgt.extend(vwgt);
        assert_eq!(self.vwgt.len(), self.n);
        self.has_vwgt = true;
        self
    }

    /// Builds keeping edge directions (duplicates merged, loops dropped).
    pub fn build_directed(&mut self) -> Graph {
        let mut g = Graph::empty(0);
        self.build_into(&mut g, false);
        g
    }

    /// Builds the symmetrized graph: for every pair `{u, v}` the combined
    /// weight `w(u→v) + w(v→u)` is stored in both directions. This is the
    /// paper's symmetric view of `Gt` used by WH-driven algorithms.
    pub fn build_symmetric(&mut self) -> Graph {
        let mut g = Graph::empty(0);
        self.build_into(&mut g, true);
        g
    }

    /// [`build_directed`](Self::build_directed) into an existing graph,
    /// reusing its CSR buffers (allocation-free once warm).
    pub fn build_directed_into(&mut self, g: &mut Graph) {
        self.build_into(g, false);
    }

    /// [`build_symmetric`](Self::build_symmetric) into an existing
    /// graph, reusing its CSR buffers (allocation-free once warm).
    pub fn build_symmetric_into(&mut self, g: &mut Graph) {
        self.build_into(g, true);
    }

    /// Transposes `g` into `out` (edge `(u, v, w)` becomes `(v, u, w)`),
    /// reusing `out`'s CSR buffers and this builder's scratch. Rows come
    /// out in ascending neighbor order (the scatter walks sources in
    /// ascending order), and vertex weights are copied through — an
    /// O(V + E) alternative to re-accumulating the reversed edge list.
    pub fn transpose_into(&mut self, g: &Graph, out: &mut Graph) {
        let n = g.num_vertices();
        out.xadj.clear();
        out.xadj.resize(n + 1, 0);
        for &v in &g.adj {
            out.xadj[v as usize + 1] += 1;
        }
        for i in 0..n {
            out.xadj[i + 1] += out.xadj[i];
        }
        out.adj.clear();
        out.adj.resize(g.adj.len(), 0);
        out.ewgt.clear();
        out.ewgt.resize(g.ewgt.len(), 0.0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&out.xadj[..n]);
        for u in 0..n as u32 {
            for (v, w) in g.edges(u) {
                let c = &mut self.cursor[v as usize];
                out.adj[*c] = u;
                out.ewgt[*c] = w;
                *c += 1;
            }
        }
        out.vwgt.clear();
        out.vwgt.extend_from_slice(&g.vwgt);
    }

    /// Advances the per-row deduplication epoch, clearing the marks on
    /// wraparound (once per 2³² rows).
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    fn build_into(&mut self, g: &mut Graph, symmetrize: bool) {
        let n = self.n;
        // Degree upper bounds (duplicates still counted, loops dropped).
        g.xadj.clear();
        g.xadj.resize(n + 1, 0);
        for &(u, v, _) in &self.edges {
            if u == v {
                continue;
            }
            g.xadj[u as usize + 1] += 1;
            if symmetrize {
                g.xadj[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            g.xadj[i + 1] += g.xadj[i];
        }
        let total = g.xadj[n];
        g.adj.clear();
        g.adj.resize(total, 0);
        g.ewgt.clear();
        g.ewgt.resize(total, 0.0);
        // Counting scatter into the provisional (duplicate-keeping) layout.
        self.cursor.clear();
        self.cursor.extend_from_slice(&g.xadj[..n]);
        for &(u, v, w) in &self.edges {
            if u == v {
                continue;
            }
            let c = &mut self.cursor[u as usize];
            g.adj[*c] = v;
            g.ewgt[*c] = w;
            *c += 1;
            if symmetrize {
                let c = &mut self.cursor[v as usize];
                g.adj[*c] = u;
                g.ewgt[*c] = w;
                *c += 1;
            }
        }
        // Per-row dedup (epoch-marked accumulator), in-place compaction,
        // then ascending neighbor order within each row.
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.mark_epoch.resize(n, 0);
        }
        let mut write = 0usize;
        for u in 0..n {
            let epoch = self.next_epoch();
            let row_start = write;
            for p in g.xadj[u]..g.xadj[u + 1] {
                let v = g.adj[p];
                let w = g.ewgt[p];
                if self.mark_epoch[v as usize] == epoch {
                    g.ewgt[self.mark[v as usize]] += w;
                } else {
                    self.mark_epoch[v as usize] = epoch;
                    self.mark[v as usize] = write;
                    g.adj[write] = v;
                    g.ewgt[write] = w;
                    write += 1;
                }
            }
            self.pairs.clear();
            self.pairs.extend(
                g.adj[row_start..write]
                    .iter()
                    .copied()
                    .zip(g.ewgt[row_start..write].iter().copied()),
            );
            self.pairs.sort_unstable_by_key(|p| p.0);
            for (i, &(v, w)) in self.pairs.iter().enumerate() {
                g.adj[row_start + i] = v;
                g.ewgt[row_start + i] = w;
            }
            // Reuse `cursor` to record the deduplicated row ends.
            self.cursor[u] = write;
        }
        g.adj.truncate(write);
        g.ewgt.truncate(write);
        for u in 0..n {
            g.xadj[u + 1] = self.cursor[u];
        }
        g.vwgt.clear();
        if self.has_vwgt {
            assert_eq!(self.vwgt.len(), n);
            g.vwgt.extend_from_slice(&self.vwgt);
        } else {
            g.vwgt.resize(n, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> GraphBuilder {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0)
            .add_edge(1, 2, 3.0)
            .add_edge(2, 0, 4.0);
        b
    }

    #[test]
    fn directed_build_keeps_direction() {
        let g = triangle().build_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.edge_weight_between(2, 0), Some(4.0));
        assert_eq!(g.edge_weight_between(0, 2), None);
    }

    #[test]
    fn symmetric_build_mirrors_and_sums() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0)
            .add_edge(1, 0, 5.0)
            .add_edge(1, 2, 1.0);
        let g = b.build_symmetric();
        // 0<->1 combined weight 7, 1<->2 combined weight 1.
        assert_eq!(g.edge_weight_between(0, 1), Some(7.0));
        assert_eq!(g.edge_weight_between(1, 0), Some(7.0));
        assert_eq!(g.edge_weight_between(2, 1), Some(1.0));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn duplicates_merge_and_loops_drop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .add_edge(0, 0, 99.0);
        let g = b.build_directed();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight_between(0, 1), Some(3.5));
    }

    #[test]
    fn vertex_weights_default_and_explicit() {
        let g = triangle().build_directed();
        assert_eq!(g.vertex_weight(1), 1.0);
        assert_eq!(g.total_vertex_weight(), 3.0);
        let mut b = triangle();
        b.vertex_weights(vec![2.0, 3.0, 4.0]);
        let g = b.build_directed();
        assert_eq!(g.total_vertex_weight(), 9.0);
    }

    #[test]
    fn empty_graph_has_isolated_vertices() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let g = triangle().build_directed();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .add_edge(3, 4, 4.0);
        b.vertex_weights(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let g = b.build_symmetric();
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        // Only the 1-2 edge survives (3 links 2 and 4 but is excluded).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight_between(0, 1), Some(2.0));
        assert_eq!(sub.vertex_weight(2), 5.0);
    }

    #[test]
    fn weighted_degree_sums_out_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0).add_edge(0, 2, 3.0);
        let g = b.build_directed();
        assert_eq!(g.weighted_degree(0), 5.0);
        assert_eq!(g.weighted_degree(1), 0.0);
    }
}
