//! Multi-source BFS with a reusable, `O(1)`-reset workspace.
//!
//! Every `GETBESTNODE` call in Algorithm 1 and every candidate search in
//! Algorithms 2–3 is "a BFS on `Gm` from a seed set, consumed in level
//! order, aborted early". [`Bfs`] owns the queue and visit marks and is
//! driven as a pull-style iterator so callers can stop at any vertex or
//! at a level boundary without paying for the rest of the traversal.

use umpa_ds::EpochMarker;

use crate::csr::Graph;

/// One BFS step: a newly visited vertex and its level (sources are 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsEvent {
    /// The visited vertex.
    pub vertex: u32,
    /// BFS distance from the nearest source.
    pub level: u32,
}

/// Reusable multi-source BFS engine over any [`Graph`].
pub struct Bfs {
    queue: Vec<(u32, u32)>,
    head: usize,
    visited: EpochMarker,
}

impl Default for Bfs {
    /// An empty workspace; grow it with [`ensure`](Self::ensure).
    fn default() -> Self {
        Self::new(0)
    }
}

impl Bfs {
    /// Creates a workspace for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            queue: Vec::with_capacity(n),
            head: 0,
            visited: EpochMarker::new(n),
        }
    }

    /// Grows the workspace to cover graphs with up to `n` vertices
    /// (never shrinks); allocation-free when already large enough. Lets
    /// one warm engine serve machines and task graphs of any size.
    pub fn ensure(&mut self, n: usize) {
        self.visited.ensure_len(n);
        if self.queue.capacity() < n {
            self.queue.reserve(n - self.queue.len());
        }
    }

    /// Starts a new traversal from `sources` (level 0, duplicates
    /// ignored). Any traversal in flight is abandoned.
    pub fn start(&mut self, sources: impl IntoIterator<Item = u32>) {
        self.queue.clear();
        self.head = 0;
        self.visited.reset();
        for s in sources {
            if !self.visited.mark(s as usize) {
                self.queue.push((s, 0));
            }
        }
    }

    /// Advances one vertex in level order, expanding its neighbors.
    ///
    /// Returns `None` when the reachable set is exhausted. The sources
    /// themselves are yielded first (level 0).
    pub fn next(&mut self, g: &Graph) -> Option<BfsEvent> {
        if self.head >= self.queue.len() {
            return None;
        }
        let (v, level) = self.queue[self.head];
        self.head += 1;
        for &n in g.neighbors(v) {
            if !self.visited.mark(n as usize) {
                self.queue.push((n, level + 1));
            }
        }
        Some(BfsEvent { vertex: v, level })
    }

    /// Like [`next`](Self::next), but expands the popped vertex's
    /// neighbors only when its level is strictly below `cap`.
    ///
    /// For a consumer that stops at the end of level `cap` this yields
    /// exactly the same event sequence as [`next`](Self::next) — the
    /// suppressed children would all sit at levels `> cap` and are
    /// never popped — while skipping the neighbor scans of the final
    /// level. Mixing the two steppers in one traversal is fine as long
    /// as `cap` never decreases below a level already expanded.
    pub fn next_capped(&mut self, g: &Graph, cap: u32) -> Option<BfsEvent> {
        if self.head >= self.queue.len() {
            return None;
        }
        let (v, level) = self.queue[self.head];
        self.head += 1;
        if level < cap {
            for &n in g.neighbors(v) {
                if !self.visited.mark(n as usize) {
                    self.queue.push((n, level + 1));
                }
            }
        }
        Some(BfsEvent { vertex: v, level })
    }

    /// Whether `v` has been visited in the current traversal.
    #[inline]
    pub fn was_visited(&self, v: u32) -> bool {
        self.visited.is_marked(v as usize)
    }

    /// Runs the traversal to completion, returning the last event —
    /// i.e. one of the vertices farthest from the source set (the
    /// deterministic last one in level order). `None` if no sources.
    pub fn run_to_farthest(&mut self, g: &Graph) -> Option<BfsEvent> {
        let mut last = None;
        while let Some(ev) = self.next(g) {
            last = Some(ev);
        }
        last
    }

    /// Collects every `(vertex, level)` reachable from `sources`.
    pub fn levels_from(
        &mut self,
        g: &Graph,
        sources: impl IntoIterator<Item = u32>,
    ) -> Vec<BfsEvent> {
        self.start(sources);
        let mut out = Vec::new();
        while let Some(ev) = self.next(g) {
            out.push(ev);
        }
        out
    }
}

/// Convenience: single-source BFS distances (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut bfs = Bfs::new(g.num_vertices());
    bfs.start([source]);
    while let Some(ev) = bfs.next(g) {
        dist[ev.vertex as usize] = ev.level;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    /// 0-1-2-3 path plus isolated 4.
    fn path4() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0);
        b.build_symmetric()
    }

    #[test]
    fn single_source_levels() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        let evs = bfs.levels_from(&g, [0]);
        let lv: Vec<(u32, u32)> = evs.iter().map(|e| (e.vertex, e.level)).collect();
        assert_eq!(lv, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert!(!bfs.was_visited(4));
    }

    #[test]
    fn multi_source_takes_min_level() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        let evs = bfs.levels_from(&g, [0, 3]);
        let level_of = |v: u32| evs.iter().find(|e| e.vertex == v).unwrap().level;
        assert_eq!(level_of(1), 1);
        assert_eq!(level_of(2), 1);
    }

    #[test]
    fn farthest_vertex_on_path() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        bfs.start([0]);
        let far = bfs.run_to_farthest(&g).unwrap();
        assert_eq!((far.vertex, far.level), (3, 3));
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        bfs.levels_from(&g, [0]);
        let evs = bfs.levels_from(&g, [3]);
        assert_eq!(evs[0].vertex, 3);
        assert_eq!(evs.last().unwrap().vertex, 0);
        assert_eq!(evs.last().unwrap().level, 3);
    }

    #[test]
    fn early_exit_leaves_engine_restartable() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        bfs.start([0]);
        assert_eq!(bfs.next(&g).unwrap().vertex, 0);
        // Abandon mid-flight, restart elsewhere.
        bfs.start([2]);
        let all: Vec<u32> = std::iter::from_fn(|| bfs.next(&g).map(|e| e.vertex)).collect();
        assert_eq!(all, vec![2, 1, 3, 0]);
    }

    #[test]
    fn duplicate_sources_are_deduped() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        let evs = bfs.levels_from(&g, [1, 1, 1]);
        assert_eq!(evs.iter().filter(|e| e.vertex == 1).count(), 1);
    }

    #[test]
    fn capped_stepper_matches_next_up_to_the_cap() {
        // Star-of-paths: compare full vs capped event streams through
        // the end of level 2, where the capped run must be identical.
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(1, 3, 1.0)
            .add_edge(2, 4, 1.0)
            .add_edge(3, 5, 1.0)
            .add_edge(4, 6, 1.0)
            .add_edge(5, 7, 1.0);
        let g = b.build_symmetric();
        let mut full = Bfs::new(8);
        full.start([0]);
        let mut a = Vec::new();
        while let Some(ev) = full.next(&g) {
            if ev.level > 2 {
                break;
            }
            a.push(ev);
        }
        let mut capped = Bfs::new(8);
        capped.start([0]);
        let mut c = Vec::new();
        while let Some(ev) = capped.next_capped(&g, 2) {
            if ev.level > 2 {
                break;
            }
            c.push(ev);
        }
        assert_eq!(a, c);
        // And the capped engine never enqueued level-3 vertices.
        assert!(!capped.was_visited(5));
        assert!(!capped.was_visited(6));
    }

    #[test]
    fn capped_at_zero_yields_sources_only() {
        let g = path4();
        let mut bfs = Bfs::new(5);
        bfs.start([1, 2]);
        let mut seen = Vec::new();
        while let Some(ev) = bfs.next_capped(&g, 0) {
            seen.push((ev.vertex, ev.level));
        }
        assert_eq!(seen, vec![(1, 0), (2, 0)]);
        assert!(!bfs.was_visited(0));
        assert!(!bfs.was_visited(3));
    }

    #[test]
    fn distances_helper_matches_levels() {
        let g = path4();
        let d = bfs_distances(&g, 1);
        assert_eq!(d[0], 1);
        assert_eq!(d[3], 2);
        assert_eq!(d[4], u32::MAX);
    }
}
