//! `umpa-graph` — flat CSR graph structures and traversals.
//!
//! Everything in the paper is graph-shaped: the MPI task graph `Gt`
//! (directed, edge weights = communication volumes), the network topology
//! graph `Gm` (undirected, edge weights = link bandwidths) and the coarse
//! task graph produced by the partitioning phase. This crate provides:
//!
//! * [`Graph`] — an immutable CSR adjacency structure with `f64` vertex
//!   and edge weights, built through [`GraphBuilder`] (which merges
//!   duplicate edges and can symmetrize);
//! * [`TaskGraph`] — the paper's `Gt`: a directed message graph plus its
//!   symmetrized view (the WH metric is undirected, Section III-A) and
//!   cached send/receive volumes (for the `t_MSRV` seed rule);
//! * [`Bfs`] — a multi-source, level-tracking BFS with an `O(1)`-reset
//!   workspace, reused across the thousands of traversals the mapping
//!   algorithms issue;
//! * [`components`] — connected components, used when `Gt` is
//!   disconnected (Algorithm 1 falls back to the heaviest task of an
//!   untouched component).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod csr;
pub mod taskgraph;

pub use bfs::{Bfs, BfsEvent};
pub use components::connected_components;
pub use csr::{Graph, GraphBuilder};
pub use taskgraph::{TaskGraph, TaskGraphScratch};

/// Commonly used items.
pub mod prelude {
    pub use crate::bfs::{Bfs, BfsEvent};
    pub use crate::csr::{Graph, GraphBuilder};
    pub use crate::taskgraph::{TaskGraph, TaskGraphScratch};
}
