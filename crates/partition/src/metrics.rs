//! Partition quality metrics on graphs.

use umpa_graph::Graph;

/// Edge cut: total weight of edges whose endpoints lie in different
/// parts. For symmetric graphs every undirected edge is stored twice, so
/// the sum is halved.
pub fn edge_cut(g: &Graph, part: &[u32]) -> f64 {
    debug_assert_eq!(g.num_vertices(), part.len());
    let mut cut = 0.0;
    for (u, v, w) in g.all_edges() {
        if part[u as usize] != part[v as usize] {
            cut += w;
        }
    }
    cut / 2.0
}

/// Per-part vertex-weight sums.
pub fn part_weights(g: &Graph, part: &[u32], k: usize) -> Vec<f64> {
    let mut w = vec![0.0; k];
    for v in 0..g.num_vertices() {
        w[part[v] as usize] += g.vertex_weight(v as u32);
    }
    w
}

/// Maximum relative overload against per-part targets:
/// `max_p (weight_p / target_p) − 1`. Zero means perfectly balanced;
/// `0.03` means the heaviest part exceeds its target by 3 %.
pub fn imbalance(g: &Graph, part: &[u32], targets: &[f64]) -> f64 {
    let w = part_weights(g, part, targets.len());
    w.iter()
        .zip(targets)
        .map(|(&got, &want)| {
            if want > 0.0 {
                got / want
            } else {
                f64::from(u8::from(got > 0.0))
            }
        })
        .fold(0.0f64, f64::max)
        - 1.0
}

/// Uniform targets summing to the graph's total vertex weight.
pub fn uniform_targets(g: &Graph, k: usize) -> Vec<f64> {
    vec![g.total_vertex_weight() / k as f64; k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_graph::GraphBuilder;

    fn path() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 5.0)
            .add_edge(2, 3, 1.0);
        b.build_symmetric()
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = path();
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 5.0);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 7.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn imbalance_relative_to_targets() {
        let g = path(); // unit weights, total 4
        let part = [0, 0, 0, 1];
        // targets 2/2: part0 has 3 -> 1.5x -> imbalance 0.5
        assert!((imbalance(&g, &part, &[2.0, 2.0]) - 0.5).abs() < 1e-12);
        // targets 3/1: exact fit
        assert!(imbalance(&g, &part, &[3.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let g = path();
        let w = part_weights(&g, &[0, 1, 1, 2], 3);
        assert_eq!(w, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn uniform_targets_split_total() {
        let g = path();
        assert_eq!(uniform_targets(&g, 4), vec![1.0; 4]);
    }
}
