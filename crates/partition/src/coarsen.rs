//! Multilevel coarsening via heavy-edge matching.
//!
//! The classic METIS-style scheme: visit vertices in random order, match
//! each unmatched vertex with its unmatched neighbor of maximum edge
//! weight (heavy-edge rule), collapse matched pairs into coarse
//! vertices, sum vertex weights and merge parallel edges. Repeated until
//! the graph is small enough for the initial bisection or coarsening
//! stalls.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_graph::{Graph, GraphBuilder};

/// One coarsening step: the coarse graph and the fine→coarse map.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse graph.
    pub graph: Graph,
    /// `map[fine_vertex]` = coarse vertex id.
    pub map: Vec<u32>,
}

/// Matches vertices by the heavy-edge rule and builds the coarse graph.
///
/// Returns `None` if matching cannot shrink the graph by at least 10 %
/// (isolated vertices and star graphs eventually stall).
pub fn coarsen_step(g: &Graph, seed: u64) -> Option<CoarseLevel> {
    coarsen_step_with(g, seed, &mut CoarsenScratch::default())
}

/// Heavy-edge matching over `g` into caller-owned buffers: visit
/// vertices in a seeded-shuffle order; match each unmatched vertex
/// with its heaviest unmatched neighbor **admitted by `admit(v, u)`**
/// (ties toward lighter vertex weight — keeps coarse weights even —
/// then smaller id); assign coarse ids in fine-id order. Returns the
/// coarse vertex count; `map[v]` is `v`'s coarse id.
///
/// This is the one matching kernel in the workspace: the partitioner's
/// [`coarsen_step`] admits every pair, while `umpa_core::multilevel`
/// passes its capacity cap as the predicate and reuses the buffers
/// across levels (allocation-free once warm).
pub fn heavy_edge_matching(
    g: &Graph,
    seed: u64,
    admit: impl Fn(u32, u32) -> bool,
    order: &mut Vec<u32>,
    mate: &mut Vec<u32>,
    map: &mut Vec<u32>,
) -> usize {
    const UNMATCHED: u32 = u32::MAX;
    let n = g.num_vertices();
    order.clear();
    order.extend(0..n as u32);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    mate.clear();
    mate.resize(n, UNMATCHED);
    for &v in order.iter() {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for (u, w) in g.edges(v) {
            if u == v || mate[u as usize] != UNMATCHED || !admit(v, u) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => {
                    w > bw || (w == bw && (g.vertex_weight(u), u) < (g.vertex_weight(bu), bu))
                }
            };
            if better {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }
    // Assign coarse ids in fine-id order (deterministic regardless of
    // the visit order above).
    map.clear();
    map.resize(n, u32::MAX);
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }
    next as usize
}

/// Reusable workspace for a coarsening loop: the CSR builder plus the
/// matching buffers, amortized across levels (the same buffer-reuse
/// discipline as `umpa_core::multilevel`'s hierarchy). The per-level
/// fine→coarse `map` is *not* here — each [`CoarseLevel`] owns its map.
#[derive(Default)]
pub struct CoarsenScratch {
    builder: GraphBuilder,
    order: Vec<u32>,
    mate: Vec<u32>,
}

/// [`coarsen_step`] reusing a caller-owned [`CoarsenScratch`].
pub fn coarsen_step_with(
    g: &Graph,
    seed: u64,
    scratch: &mut CoarsenScratch,
) -> Option<CoarseLevel> {
    let n = g.num_vertices();
    let CoarsenScratch {
        builder,
        order,
        mate,
    } = scratch;
    let mut map = Vec::new();
    let coarse_n = heavy_edge_matching(g, seed, |_, _| true, order, mate, &mut map);
    if coarse_n as f64 > 0.9 * n as f64 {
        return None;
    }
    // Coarse vertex weights and edges.
    let mut vwgt = vec![0.0; coarse_n];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vertex_weight(v as u32);
    }
    builder.reset(coarse_n);
    for (u, v, w) in g.all_edges() {
        let (cu, cv) = (map[u as usize], map[v as usize]);
        if cu != cv {
            builder.add_edge(cu, cv, w);
        }
    }
    builder.vertex_weights(vwgt);
    // The fine graph is symmetric; merging duplicates directionally
    // keeps it symmetric, so a directed build suffices.
    let mut graph = Graph::empty(0);
    builder.build_directed_into(&mut graph);
    Some(CoarseLevel { graph, map })
}

/// Coarsens until `target_size` vertices or a stall; returns the levels
/// from finest to coarsest (empty if `g` is already small enough).
pub fn coarsen_until(g: &Graph, target_size: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut scratch = CoarsenScratch::default();
    let mut round = 0u64;
    loop {
        let current = levels.last().map(|l| &l.graph).unwrap_or(g);
        if current.num_vertices() <= target_size {
            break;
        }
        match coarsen_step_with(current, seed.wrapping_add(round), &mut scratch) {
            Some(level) => levels.push(level),
            None => break,
        }
        round += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_graph::GraphBuilder;

    fn grid(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n * n);
        let idx = |x: usize, y: usize| (y * n + x) as u32;
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    b.add_edge(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < n {
                    b.add_edge(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.build_symmetric()
    }

    #[test]
    fn step_preserves_total_vertex_weight() {
        let g = grid(8);
        let lvl = coarsen_step(&g, 1).unwrap();
        assert!(lvl.graph.num_vertices() < g.num_vertices());
        assert!((lvl.graph.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9);
    }

    #[test]
    fn step_drops_internal_edges_only() {
        let g = grid(6);
        let lvl = coarsen_step(&g, 2).unwrap();
        // Every coarse edge weight is a sum of fine cut edges; totals
        // can only shrink by collapsed (matched) edges.
        assert!(lvl.graph.total_edge_weight() < g.total_edge_weight());
        // Map covers all fine vertices with valid coarse ids.
        let cn = lvl.graph.num_vertices() as u32;
        assert!(lvl.map.iter().all(|&c| c < cn));
    }

    #[test]
    fn heavy_edges_are_preferred() {
        // K3 with 0-1 (w=1), 0-2 (w=10), 1-2 (w=5). Edge 0-1 is the
        // locally lightest choice for *both* endpoints, so whatever the
        // visit order, the heavy-edge rule must never match it.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0)
            .add_edge(0, 2, 10.0)
            .add_edge(1, 2, 5.0);
        let g = b.build_symmetric();
        for seed in 0..16u64 {
            let lvl = coarsen_step(&g, seed).unwrap();
            assert_ne!(
                lvl.map[0], lvl.map[1],
                "seed {seed} matched the lightest edge"
            );
        }
    }

    #[test]
    fn coarsen_until_reaches_target() {
        let g = grid(12); // 144 vertices
        let levels = coarsen_until(&g, 20, 7);
        assert!(!levels.is_empty());
        let last = &levels.last().unwrap().graph;
        assert!(
            last.num_vertices() <= 40,
            "stalled at {}",
            last.num_vertices()
        );
        // Weight conserved through all levels.
        assert!((last.total_vertex_weight() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn edgeless_graph_stalls_gracefully() {
        let g = Graph::empty(10);
        // Self-matching shrinks nothing; must return None, not loop.
        assert!(coarsen_step(&g, 3).is_none());
        assert!(coarsen_until(&g, 2, 3).is_empty());
    }
}
