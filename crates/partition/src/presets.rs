//! The seven partitioner presets of Figure 1.
//!
//! Each preset is the full pipeline a paper partitioner plays: multilevel
//! recursive-bisection graph partitioning (every tool in the line-up is
//! multilevel RB at heart) followed by the preset's communication-metric
//! refinement:
//!
//! | preset    | emulates | graph phase           | comm refinement        |
//! |-----------|----------|-----------------------|------------------------|
//! | `Scotch`  | SCOTCH   | edge-cut, light FM    | none (edge-cut tool)   |
//! | `Kaffpa`  | KaHIP    | edge-cut, strong FM   | none (edge-cut tool)   |
//! | `Metis`   | METIS    | edge-cut              | TV, 1 pass             |
//! | `Patoh`   | PaToH    | edge-cut              | TV, 3 passes           |
//! | `UmpaMV`  | UMPA_MV  | edge-cut              | MSV → TV, 3 passes     |
//! | `UmpaMM`  | UMPA_MM  | edge-cut              | MSM → TM → TV, 3 passes|
//! | `UmpaTM`  | UMPA_TM  | edge-cut              | TM → TV, 3 passes      |
//!
//! The intent is not to clone those codebases but to produce the same
//! *spread* of TV/TM/MSV/MSM trade-offs the paper uses as mapping
//! inputs (DESIGN.md, substitution table).

use umpa_matgen::SparsePattern;

use crate::comm_refine::{CommObjective, CommRefiner};
use crate::metrics::uniform_targets;
use crate::recursive::{recursive_bisection, MlConfig};

/// A named partitioner emulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// SCOTCH-like: edge cut only, light local search.
    Scotch,
    /// KaHIP-like: edge cut only, strong local search.
    Kaffpa,
    /// METIS-like: volume objective, light comm refinement.
    Metis,
    /// PaToH-like: volume objective, strong comm refinement.
    Patoh,
    /// UMPA minimizing MSV then TV.
    UmpaMV,
    /// UMPA minimizing MSM, then TM, then TV.
    UmpaMM,
    /// UMPA minimizing TM then TV.
    UmpaTM,
}

impl PartitionerKind {
    /// All presets in the order Figure 1 lists them.
    pub fn all() -> [PartitionerKind; 7] {
        [
            PartitionerKind::Kaffpa,
            PartitionerKind::Metis,
            PartitionerKind::Patoh,
            PartitionerKind::Scotch,
            PartitionerKind::UmpaMM,
            PartitionerKind::UmpaMV,
            PartitionerKind::UmpaTM,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Scotch => "SCOTCH",
            PartitionerKind::Kaffpa => "KAFFPA",
            PartitionerKind::Metis => "METIS",
            PartitionerKind::Patoh => "PATOH",
            PartitionerKind::UmpaMV => "UMPA_MV",
            PartitionerKind::UmpaMM => "UMPA_MM",
            PartitionerKind::UmpaTM => "UMPA_TM",
        }
    }

    /// Graph-phase configuration.
    fn ml_config(self, seed: u64) -> MlConfig {
        let base = MlConfig {
            epsilon: 0.03,
            seed: seed ^ (self as u64).wrapping_mul(0x51ED_2701),
            ..MlConfig::default()
        };
        match self {
            // Strong local search for the KaHIP emulation.
            PartitionerKind::Kaffpa => MlConfig {
                init_trials: 8,
                fm_passes: 8,
                ..base
            },
            // Light local search for the SCOTCH emulation.
            PartitionerKind::Scotch => MlConfig {
                init_trials: 2,
                fm_passes: 2,
                ..base
            },
            _ => base,
        }
    }

    /// Communication refinement objectives (`None` for pure edge-cut
    /// tools) and pass count.
    fn comm_objectives(self) -> Option<(&'static [CommObjective], u32)> {
        use CommObjective::*;
        match self {
            PartitionerKind::Scotch | PartitionerKind::Kaffpa => None,
            PartitionerKind::Metis => Some((&[TotalVolume], 1)),
            PartitionerKind::Patoh => Some((&[TotalVolume], 3)),
            PartitionerKind::UmpaMV => Some((&[MaxSendVolume, TotalVolume], 3)),
            PartitionerKind::UmpaMM => Some((&[MaxSendMessages, TotalMessages, TotalVolume], 3)),
            PartitionerKind::UmpaTM => Some((&[TotalMessages, TotalVolume], 3)),
        }
    }

    /// Partitions matrix `a` row-wise into `k` parts.
    ///
    /// Returns `part[row] ∈ 0..k`. Deterministic in `(self, a, k, seed)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use umpa_partition::PartitionerKind;
    /// use umpa_matgen::gen::{stencil2d, Stencil2D};
    ///
    /// let a = stencil2d(10, 10, Stencil2D::FivePoint);
    /// let part = PartitionerKind::Patoh.partition_matrix(&a, 4, 7);
    /// assert_eq!(part.len(), 100);
    /// assert!(part.iter().all(|&p| p < 4));
    /// ```
    pub fn partition_matrix(self, a: &SparsePattern, k: usize, seed: u64) -> Vec<u32> {
        let g = a.to_graph();
        let targets = uniform_targets(&g, k);
        let mut part = recursive_bisection(&g, &targets, &self.ml_config(seed));
        if let Some((objectives, passes)) = self.comm_objectives() {
            let mut refiner = CommRefiner::new(a, part, k);
            refiner.refine(objectives, passes, &targets, 0.05);
            part = refiner.into_part();
        }
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{imbalance, uniform_targets};
    use umpa_matgen::gen::{stencil2d, Stencil2D};
    use umpa_matgen::spmv::{partition_loads, spmv_task_graph, CommStats};

    fn stats_for(kind: PartitionerKind, a: &SparsePattern, k: usize) -> CommStats {
        let part = kind.partition_matrix(a, k, 7);
        let tg = spmv_task_graph(a, &part, k);
        CommStats::from_task_graph(&tg, &partition_loads(a, &part, k))
    }

    #[test]
    fn every_preset_produces_valid_partitions() {
        let a = stencil2d(16, 16, Stencil2D::FivePoint);
        let g = a.to_graph();
        for kind in PartitionerKind::all() {
            let part = kind.partition_matrix(&a, 8, 3);
            assert_eq!(part.len(), 256);
            assert!(part.iter().all(|&p| p < 8), "{}", kind.name());
            let imb = imbalance(&g, &part, &uniform_targets(&g, 8));
            assert!(imb <= 0.25, "{} imbalance {imb}", kind.name());
        }
    }

    #[test]
    fn volume_presets_beat_cut_presets_on_tv() {
        // On a single small stencil the spread is noisy; compare the
        // geometric mean over a few structures, as Figure 1 does.
        use umpa_matgen::gen::{banded_random, erdos_renyi};
        let mats = [
            stencil2d(20, 20, Stencil2D::FivePoint),
            banded_random(400, 30, 8, 1),
            erdos_renyi(400, 8, 2),
        ];
        let gmean = |kind: PartitionerKind| -> f64 {
            mats.iter()
                .map(|a| stats_for(kind, a, 8).tv.max(1.0).ln())
                .sum::<f64>()
                .exp()
        };
        let patoh = gmean(PartitionerKind::Patoh);
        let scotch = gmean(PartitionerKind::Scotch);
        assert!(
            patoh <= scotch * 1.05,
            "PATOH gmean TV {patoh} should not trail SCOTCH gmean TV {scotch}"
        );
    }

    #[test]
    fn umpatm_targets_message_count() {
        let a = stencil2d(20, 20, Stencil2D::FivePoint);
        let tm_pre = stats_for(PartitionerKind::UmpaTM, &a, 8);
        let sc = stats_for(PartitionerKind::Scotch, &a, 8);
        assert!(
            tm_pre.tm <= sc.tm,
            "UMPA_TM TM {} vs SCOTCH TM {}",
            tm_pre.tm,
            sc.tm
        );
    }

    #[test]
    fn names_and_roster() {
        assert_eq!(PartitionerKind::all().len(), 7);
        assert_eq!(PartitionerKind::Patoh.name(), "PATOH");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = stencil2d(12, 12, Stencil2D::FivePoint);
        let p1 = PartitionerKind::UmpaMV.partition_matrix(&a, 4, 9);
        let p2 = PartitionerKind::UmpaMV.partition_matrix(&a, 4, 9);
        assert_eq!(p1, p2);
    }
}
