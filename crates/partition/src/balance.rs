//! Post-partitioning balance fixing.
//!
//! The paper: "Since graph partitioning algorithms do not always obtain
//! a perfect balance, as a post processing, we fix the balance with a
//! small sacrifice on the edge-cut metric via a single
//! Fiduccia–Mattheyses (FM) iteration" (Section III-A). This module is
//! that iteration: vertices leave overloaded parts for the best
//! underloaded part, chosen to minimize edge-cut damage.

use umpa_ds::IndexedMaxHeap;
use umpa_graph::Graph;

use crate::metrics::part_weights;

/// Moves vertices out of parts exceeding `targets[p] * (1 + epsilon)`
/// until every part fits (or no helpful move remains). A single
/// FM-style iteration: each vertex moves at most once, best-gain first.
///
/// Returns the number of vertices moved.
pub fn fix_balance(g: &Graph, part: &mut [u32], targets: &[f64], epsilon: f64) -> usize {
    let n = g.num_vertices();
    let k = targets.len();
    let mut weights = part_weights(g, part, k);
    let limit: Vec<f64> = targets.iter().map(|t| t * (1.0 + epsilon)).collect();
    let overloaded = |weights: &[f64], p: usize| weights[p] > limit[p] + 1e-12;
    if !(0..k).any(|p| overloaded(&weights, p)) {
        return 0;
    }
    // Priority: vertices in overloaded parts, keyed by the edge-cut gain
    // of their best alternative part (computed lazily at pop time; the
    // heap key is an upper bound refreshed on pop — a standard lazy
    // re-evaluation scheme that keeps one pass near-linear).
    let mut heap = IndexedMaxHeap::new(n);
    for v in 0..n as u32 {
        if overloaded(&weights, part[v as usize] as usize) {
            // Initial optimistic key: total incident weight (max possible gain).
            heap.push(v, g.weighted_degree(v));
        }
    }
    let mut moved = 0usize;
    let mut conn: Vec<f64> = vec![0.0; k];
    let mut touched: Vec<u32> = Vec::new();
    while let Some((v, key)) = heap.pop() {
        let from = part[v as usize] as usize;
        if !overloaded(&weights, from) {
            continue; // its part got fixed meanwhile
        }
        // Connectivity of v to each part.
        touched.clear();
        for (u, w) in g.edges(v) {
            let p = part[u as usize];
            if conn[p as usize] == 0.0 {
                touched.push(p);
            }
            conn[p as usize] += w;
        }
        let vw = g.vertex_weight(v);
        // Best receiving part: must have room; maximize gain = conn(to) −
        // conn(from). Consider connected parts first, then any part
        // with room.
        let mut best: Option<(f64, usize)> = None;
        let consider = |best: &mut Option<(f64, usize)>,
                        to: usize,
                        conn_to: f64,
                        conn_from: f64,
                        weights: &[f64]| {
            if to == from || weights[to] + vw > limit[to] {
                return;
            }
            let gain = conn_to - conn_from;
            if best.is_none() || gain > best.unwrap().0 {
                *best = Some((gain, to));
            }
        };
        let conn_from = conn[from];
        for &p in &touched {
            consider(&mut best, p as usize, conn[p as usize], conn_from, &weights);
        }
        if best.is_none() {
            for to in 0..k {
                consider(&mut best, to, 0.0, conn_from, &weights);
            }
        }
        // Lazy key refresh: if the true gain is lower than the heap key
        // and other candidates remain, push back with the true key.
        if let Some((gain, to)) = best {
            if gain < key - 1e-12 {
                if let Some(&(_, next_key)) = heap.peek().as_ref() {
                    if gain < next_key {
                        heap.push(v, gain);
                        for &p in &touched {
                            conn[p as usize] = 0.0;
                        }
                        continue;
                    }
                }
            }
            part[v as usize] = to as u32;
            weights[from] -= vw;
            weights[to] += vw;
            moved += 1;
            // Keys are upper bounds on gain; a neighbor's true gain can
            // rise by up to 2·w(u,v) now that v left its part, so bump
            // to keep the bound valid.
            for (u, w) in g.edges(v) {
                if let Some(cur) = heap.key_of(u) {
                    heap.change_key(u, cur + 2.0 * w);
                }
            }
        }
        for &p in &touched {
            conn[p as usize] = 0.0;
        }
        if !(0..k).any(|p| overloaded(&weights, p)) {
            break;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};
    use umpa_graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        b.build_symmetric()
    }

    #[test]
    fn fixes_an_overloaded_part() {
        let g = path(8);
        // All in part 0; targets 4/4.
        let mut part = vec![0u32; 8];
        let targets = vec![4.0, 4.0];
        let moved = fix_balance(&g, &mut part, &targets, 0.05);
        assert!(moved >= 4);
        assert!(imbalance(&g, &part, &targets) <= 0.05 + 1e-9);
    }

    #[test]
    fn balanced_input_is_untouched() {
        let g = path(8);
        let mut part: Vec<u32> = (0..8).map(|i| u32::from(i >= 4)).collect();
        let before = part.clone();
        assert_eq!(fix_balance(&g, &mut part, &[4.0, 4.0], 0.05), 0);
        assert_eq!(part, before);
    }

    #[test]
    fn prefers_cut_friendly_moves() {
        // Path 0-..-7, part0 = {0..5} (6 vertices), part1 = {6,7}.
        let g = path(8);
        let mut part = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let targets = vec![4.0, 4.0];
        fix_balance(&g, &mut part, &targets, 0.01);
        // Boundary vertices (5, then 4) should migrate, keeping cut = 1.
        assert_eq!(edge_cut(&g, &part), 1.0, "part = {part:?}");
        assert!(imbalance(&g, &part, &targets) <= 0.02);
    }

    #[test]
    fn respects_capacity_of_receivers() {
        let g = path(6);
        // targets: part0 tiny, part1 roomy.
        let mut part = vec![0, 0, 0, 0, 1, 1];
        let targets = vec![2.0, 4.0];
        fix_balance(&g, &mut part, &targets, 0.0);
        let w = crate::metrics::part_weights(&g, &part, 2);
        assert!(w[0] <= 2.0 + 1e-9);
        assert!(w[1] <= 4.0 + 1e-9);
    }

    #[test]
    fn multiway_overload_resolves() {
        let g = path(12);
        let mut part = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let targets = vec![3.0, 3.0, 3.0, 3.0];
        fix_balance(&g, &mut part, &targets, 0.1);
        let imb = imbalance(&g, &part, &targets);
        assert!(imb <= 0.1 + 1e-9, "imbalance {imb}");
    }
}
