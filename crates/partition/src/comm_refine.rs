//! Communication-metric refinement on the matrix structure.
//!
//! The graph partitioner minimizes edge cut, but the paper's partitioner
//! line-up differs in *communication* objectives: "METIS and PATOH are
//! run to minimize the total communication volume TV", and the UMPA
//! variants minimize MSV / MSM / TM hierarchies (Section IV-A). Edge cut
//! only approximates those. This module implements direct refinement of
//! the exact 1-D row-wise metrics on the column-net structure:
//! boundary rows are moved between parts when the move improves the
//! preset's objective vector lexicographically, subject to load balance.
//!
//! All four metrics are maintained incrementally:
//!
//! * `TV`  — total words sent (Σ_j needers of column j),
//! * `TM`  — number of ordered part pairs exchanging a message,
//! * `MSV` — max per-part send volume,
//! * `MSM` — max per-part sent-message count.

use umpa_ds::IndexedMaxHeap;
use umpa_matgen::SparsePattern;

/// Communication objectives, in the units of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommObjective {
    /// Total communication volume.
    TotalVolume,
    /// Maximum send volume of any part.
    MaxSendVolume,
    /// Maximum number of messages sent by any part.
    MaxSendMessages,
    /// Total number of messages.
    TotalMessages,
}

/// A per-part quantity with an O(1) max query.
#[derive(Clone, Debug)]
struct MaxTracker {
    value: Vec<f64>,
    heap: IndexedMaxHeap,
}

impl MaxTracker {
    fn new(k: usize) -> Self {
        let mut heap = IndexedMaxHeap::new(k);
        for p in 0..k as u32 {
            heap.push(p, 0.0);
        }
        Self {
            value: vec![0.0; k],
            heap,
        }
    }

    fn add(&mut self, p: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        self.value[p as usize] += delta;
        self.heap.change_key(p, self.value[p as usize]);
    }

    fn max(&self) -> f64 {
        self.heap.peek().map_or(0.0, |(_, v)| v)
    }
}

/// Incremental state of the 1-D row-wise communication metrics under a
/// row partition, supporting reversible row moves.
pub struct CommRefiner<'a> {
    a: &'a SparsePattern,
    k: usize,
    part: Vec<u32>,
    /// Per column: `(part, pin count)` for parts with at least one pin.
    col_parts: Vec<Vec<(u32, u32)>>,
    send_vol: MaxTracker,
    send_msgs: MaxTracker,
    /// Dense `k×k` message matrix: `msgs[o·k + p]` = number of columns
    /// part `o` sends to part `p`. `k` is the part count (small), and
    /// the matrix is only ever indexed by a known pair — never iterated
    /// — so dense beats a hash map and keeps iteration order out of the
    /// picture entirely.
    msgs: Vec<u32>,
    tv: f64,
    tm: i64,
    loads: Vec<f64>,
    rows_in_part: Vec<u32>,
}

impl<'a> CommRefiner<'a> {
    /// Builds the state for matrix `a` under `part` (values `0..k`).
    pub fn new(a: &'a SparsePattern, part: Vec<u32>, k: usize) -> Self {
        assert_eq!(a.nrows(), part.len());
        assert_eq!(a.nrows(), a.ncols());
        let at = a.transpose();
        let n = a.nrows();
        let mut col_parts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for j in 0..n as u32 {
            let cp = &mut col_parts[j as usize];
            for &i in at.row(j) {
                let p = part[i as usize];
                match cp.iter_mut().find(|e| e.0 == p) {
                    Some(e) => e.1 += 1,
                    None => cp.push((p, 1)),
                }
            }
        }
        let mut loads = vec![0.0; k];
        let mut rows_in_part = vec![0u32; k];
        for i in 0..n as u32 {
            loads[part[i as usize] as usize] += 1.0 + a.row_nnz(i) as f64;
            rows_in_part[part[i as usize] as usize] += 1;
        }
        let mut s = Self {
            a,
            k,
            part,
            col_parts,
            send_vol: MaxTracker::new(k),
            send_msgs: MaxTracker::new(k),
            msgs: vec![0; k * k],
            tv: 0.0,
            tm: 0,
            loads,
            rows_in_part,
        };
        for j in 0..n as u32 {
            s.add_contribution(j);
        }
        s
    }

    /// `(TV, TM, MSV, MSM)` under the current partition.
    pub fn metrics(&self) -> (f64, i64, f64, f64) {
        (self.tv, self.tm, self.send_vol.max(), self.send_msgs.max())
    }

    /// Current partition vector.
    pub fn part(&self) -> &[u32] {
        &self.part
    }

    /// Consumes the refiner, returning the partition.
    pub fn into_part(self) -> Vec<u32> {
        self.part
    }

    /// Per-part computational loads (`Σ 1 + nnz`).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    fn remove_contribution(&mut self, j: u32) {
        let o = self.part[j as usize];
        let mut needers = 0u32;
        for &(p, _) in &self.col_parts[j as usize] {
            if p == o {
                continue;
            }
            needers += 1;
            let e = &mut self.msgs[o as usize * self.k + p as usize];
            *e -= 1;
            if *e == 0 {
                self.tm -= 1;
                self.send_msgs.add(o, -1.0);
            }
        }
        if needers > 0 {
            self.tv -= f64::from(needers);
            self.send_vol.add(o, -f64::from(needers));
        }
    }

    fn add_contribution(&mut self, j: u32) {
        let o = self.part[j as usize];
        let mut needers = 0u32;
        for &(p, _) in &self.col_parts[j as usize] {
            if p == o {
                continue;
            }
            needers += 1;
            let e = &mut self.msgs[o as usize * self.k + p as usize];
            if *e == 0 {
                self.tm += 1;
                self.send_msgs.add(o, 1.0);
            }
            *e += 1;
        }
        if needers > 0 {
            self.tv += f64::from(needers);
            self.send_vol.add(o, f64::from(needers));
        }
    }

    /// Moves row `i` to part `q`, updating every metric. Calling again
    /// with the original part exactly reverses the move — the
    /// evaluation path relies on that reversibility.
    pub fn apply_move(&mut self, i: u32, q: u32) {
        let p = self.part[i as usize];
        if p == q {
            return;
        }
        // Affected columns: every column row i pins, plus column i
        // itself (its ownership follows the row).
        let row = self.a.row(i);
        let has_diag = row.binary_search(&i).is_ok();
        for &j in row {
            self.remove_contribution(j);
        }
        if !has_diag {
            self.remove_contribution(i);
        }
        // Move the pins.
        for &j in row {
            let cp = &mut self.col_parts[j as usize];
            let at = cp.iter().position(|e| e.0 == p).expect("pin missing");
            cp[at].1 -= 1;
            if cp[at].1 == 0 {
                cp.swap_remove(at);
            }
            match cp.iter_mut().find(|e| e.0 == q) {
                Some(e) => e.1 += 1,
                None => cp.push((q, 1)),
            }
        }
        // Move ownership and load.
        self.part[i as usize] = q;
        let w = 1.0 + self.a.row_nnz(i) as f64;
        self.loads[p as usize] -= w;
        self.loads[q as usize] += w;
        self.rows_in_part[p as usize] -= 1;
        self.rows_in_part[q as usize] += 1;
        for &j in row {
            self.add_contribution(j);
        }
        if !has_diag {
            self.add_contribution(i);
        }
    }

    /// Objective values in priority order.
    fn objective_vec(&self, objectives: &[CommObjective], out: &mut Vec<f64>) {
        out.clear();
        for &o in objectives {
            out.push(match o {
                CommObjective::TotalVolume => self.tv,
                CommObjective::MaxSendVolume => self.send_vol.max(),
                CommObjective::MaxSendMessages => self.send_msgs.max(),
                CommObjective::TotalMessages => self.tm as f64,
            });
        }
    }

    /// Refinement passes over all rows. A move is accepted when it
    /// strictly improves the objective vector lexicographically, the
    /// receiving part stays under `targets[q]·(1+epsilon)` load, and the
    /// source part keeps at least one row. Returns total accepted moves.
    pub fn refine(
        &mut self,
        objectives: &[CommObjective],
        passes: u32,
        targets: &[f64],
        epsilon: f64,
    ) -> usize {
        assert_eq!(targets.len(), self.k);
        let limits: Vec<f64> = targets.iter().map(|t| t * (1.0 + epsilon)).collect();
        let n = self.a.nrows() as u32;
        let mut total = 0usize;
        let mut before = Vec::new();
        let mut after = Vec::new();
        let mut cands: Vec<u32> = Vec::new();
        for _ in 0..passes {
            let mut moves = 0usize;
            for i in 0..n {
                let p = self.part[i as usize];
                if self.rows_in_part[p as usize] <= 1 {
                    continue;
                }
                // Candidate parts: those sharing a column with row i.
                cands.clear();
                for &j in self.a.row(i) {
                    for &(q, _) in &self.col_parts[j as usize] {
                        if q != p && !cands.contains(&q) {
                            cands.push(q);
                        }
                    }
                    if cands.len() >= 8 {
                        break;
                    }
                }
                let w = 1.0 + self.a.row_nnz(i) as f64;
                self.objective_vec(objectives, &mut before);
                for &q in cands.iter().take(8) {
                    if self.loads[q as usize] + w > limits[q as usize] {
                        continue;
                    }
                    self.apply_move(i, q);
                    self.objective_vec(objectives, &mut after);
                    if lex_less(&after, &before) {
                        moves += 1;
                        break;
                    }
                    self.apply_move(i, p); // revert
                }
            }
            total += moves;
            if moves == 0 {
                break;
            }
        }
        total
    }
}

/// Strict lexicographic less-than with a small tolerance.
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    const TOL: f64 = 1e-9;
    for (x, y) in a.iter().zip(b) {
        if *x < y - TOL {
            return true;
        }
        if *x > y + TOL {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_matgen::gen::{stencil2d, Stencil2D};
    use umpa_matgen::spmv::{partition_loads, spmv_task_graph, CommStats};

    fn check_against_reference(a: &SparsePattern, part: &[u32], k: usize) {
        let refiner = CommRefiner::new(a, part.to_vec(), k);
        let (tv, tm, msv, msm) = refiner.metrics();
        let tg = spmv_task_graph(a, part, k);
        let stats = CommStats::from_task_graph(&tg, &partition_loads(a, part, k));
        assert!((tv - stats.tv).abs() < 1e-9, "TV {tv} vs {}", stats.tv);
        assert_eq!(tm as usize, stats.tm, "TM");
        assert!((msv - stats.msv).abs() < 1e-9, "MSV");
        assert!((msm - f64::from(stats.msm)).abs() < 1e-9, "MSM");
    }

    #[test]
    fn incremental_metrics_match_direct_computation() {
        let a = stencil2d(8, 8, Stencil2D::FivePoint);
        let part: Vec<u32> = (0..64).map(|i| (i / 16) as u32).collect();
        check_against_reference(&a, &part, 4);
    }

    #[test]
    fn moves_are_exactly_reversible() {
        let a = stencil2d(6, 6, Stencil2D::FivePoint);
        let part: Vec<u32> = (0..36).map(|i| (i % 3) as u32).collect();
        let mut r = CommRefiner::new(&a, part.clone(), 3);
        let before = r.metrics();
        r.apply_move(7, 2);
        r.apply_move(7, part[7]);
        let after = r.metrics();
        assert_eq!(before.1, after.1);
        assert!((before.0 - after.0).abs() < 1e-9);
        assert!((before.2 - after.2).abs() < 1e-9);
        assert_eq!(r.part(), &part[..]);
    }

    #[test]
    fn moves_keep_metrics_consistent() {
        let a = stencil2d(8, 8, Stencil2D::FivePoint);
        let part: Vec<u32> = (0..64).map(|i| (i % 4) as u32).collect();
        let mut r = CommRefiner::new(&a, part, 4);
        // A scripted walk of moves; after each, incremental == direct.
        for (i, q) in [(0u32, 3u32), (17, 2), (33, 0), (63, 1), (5, 3)] {
            r.apply_move(i, q);
            let snapshot = r.part().to_vec();
            check_against_reference(&a, &snapshot, 4);
        }
    }

    #[test]
    fn tv_refinement_reduces_tv() {
        let a = stencil2d(12, 12, Stencil2D::FivePoint);
        // Interleaved rows: horrible communication volume.
        let part: Vec<u32> = (0..144).map(|i| (i % 4) as u32).collect();
        let mut r = CommRefiner::new(&a, part, 4);
        let (tv0, ..) = r.metrics();
        let targets = vec![r.loads().iter().sum::<f64>() / 4.0; 4];
        let moved = r.refine(&[CommObjective::TotalVolume], 4, &targets, 0.10);
        let (tv1, ..) = r.metrics();
        assert!(moved > 0);
        assert!(tv1 < tv0, "TV {tv0} -> {tv1}");
        // Result still consistent with direct computation.
        let snapshot = r.part().to_vec();
        check_against_reference(&a, &snapshot, 4);
    }

    #[test]
    fn msv_refinement_prioritizes_msv_over_tv() {
        let a = stencil2d(12, 12, Stencil2D::FivePoint);
        let part: Vec<u32> = (0..144).map(|i| (i % 4) as u32).collect();
        let targets = vec![
            CommRefiner::new(&a, part.clone(), 4)
                .loads()
                .iter()
                .sum::<f64>()
                / 4.0;
            4
        ];
        let mut r = CommRefiner::new(&a, part, 4);
        let (_, _, msv0, _) = r.metrics();
        r.refine(
            &[CommObjective::MaxSendVolume, CommObjective::TotalVolume],
            4,
            &targets,
            0.10,
        );
        let (_, _, msv1, _) = r.metrics();
        assert!(msv1 <= msv0);
    }

    #[test]
    fn balance_limit_is_respected() {
        let a = stencil2d(10, 10, Stencil2D::FivePoint);
        let part: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let mut r = CommRefiner::new(&a, part, 2);
        let total: f64 = r.loads().iter().sum();
        let targets = vec![total / 2.0; 2];
        r.refine(&[CommObjective::TotalVolume], 4, &targets, 0.05);
        for (load, target) in r.loads().iter().zip(&targets) {
            assert!(*load <= *target * 1.05 + 1e-9);
        }
    }

    #[test]
    fn refinement_never_empties_a_part() {
        let a = stencil2d(6, 6, Stencil2D::FivePoint);
        // Part 3 has a single row.
        let mut part = vec![0u32; 36];
        for (i, p) in part.iter_mut().enumerate() {
            *p = (i % 3) as u32;
        }
        part[35] = 3;
        let mut r = CommRefiner::new(&a, part, 4);
        let targets = vec![r.loads().iter().sum::<f64>() / 4.0 * 2.0; 4];
        r.refine(&[CommObjective::TotalVolume], 4, &targets, 0.5);
        let mut counts = [0u32; 4];
        for &p in r.part() {
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }
}
