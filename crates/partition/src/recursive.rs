//! Recursive bisection to `k` parts with per-part target weights.
//!
//! The mapping pipeline needs target weights because "the target part
//! weights are the number of available processors on each node"
//! (Section III-A) — which may be non-uniform. Targets are split between
//! the two recursion branches proportionally, and each branch works on
//! the induced subgraph.

use umpa_graph::Graph;

use crate::bisect::{multilevel_bisect, BisectConfig};

/// Multilevel configuration for recursive bisection.
#[derive(Clone, Copy, Debug)]
pub struct MlConfig {
    /// Allowed relative overload per part.
    pub epsilon: f64,
    /// Greedy-graph-growing restarts at the coarsest level.
    pub init_trials: u32,
    /// FM passes per uncoarsening level.
    pub fm_passes: u32,
    /// Coarsest-graph size.
    pub coarsen_to: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            init_trials: 4,
            fm_passes: 4,
            coarsen_to: 96,
            seed: 1,
        }
    }
}

impl MlConfig {
    fn bisect_cfg(&self, depth_seed: u64) -> BisectConfig {
        BisectConfig {
            epsilon: self.epsilon,
            init_trials: self.init_trials,
            fm_passes: self.fm_passes,
            coarsen_to: self.coarsen_to,
            seed: self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(depth_seed),
        }
    }
}

/// Partitions `g` into `targets.len()` parts; `part[v]` indexes
/// `targets`. Parts correspond to contiguous target ranges, so part `i`
/// aims at weight `targets[i]`.
pub fn recursive_bisection(g: &Graph, targets: &[f64], cfg: &MlConfig) -> Vec<u32> {
    let k = targets.len();
    assert!(k >= 1, "need at least one part");
    let mut part = vec![0u32; g.num_vertices()];
    if k == 1 {
        return part;
    }
    let vertices: Vec<u32> = (0..g.num_vertices() as u32).collect();
    split(g, &vertices, targets, 0, cfg, 1, &mut part);
    part
}

/// Recursively splits `vertices` (a subset of `g`) across
/// `targets[first_part..first_part + targets.len()]`.
fn split(
    g: &Graph,
    vertices: &[u32],
    targets: &[f64],
    first_part: u32,
    cfg: &MlConfig,
    node_id: u64,
    part: &mut [u32],
) {
    let k = targets.len();
    if k == 1 {
        for &v in vertices {
            part[v as usize] = first_part;
        }
        return;
    }
    // Degenerate branch: no more vertices than parts (deep recursion on
    // heavily imbalanced graphs). Hand each vertex its own part.
    if vertices.len() <= k {
        for (i, &v) in vertices.iter().enumerate() {
            part[v as usize] = first_part + (i.min(k - 1)) as u32;
        }
        return;
    }
    let k_left = k / 2;
    let target_left: f64 = targets[..k_left].iter().sum();
    let sub = g.induced_subgraph(vertices);
    // Scale the left target to this subgraph's actual weight: upstream
    // imbalance must not compound downstream.
    let frac = target_left / targets.iter().sum::<f64>();
    let local_target_left = sub.total_vertex_weight() * frac;
    let side = multilevel_bisect(&sub, local_target_left, &cfg.bisect_cfg(node_id));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // A degenerate empty side (tiny subgraphs) would lose parts; steal
    // one vertex to keep every part nonempty when possible.
    if left.is_empty() && !right.is_empty() {
        left.push(right.pop().unwrap());
    } else if right.is_empty() && !left.is_empty() {
        right.push(left.pop().unwrap());
    }
    split(
        g,
        &left,
        &targets[..k_left],
        first_part,
        cfg,
        node_id * 2,
        part,
    );
    split(
        g,
        &right,
        &targets[k_left..],
        first_part + k_left as u32,
        cfg,
        node_id * 2 + 1,
        part,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance, part_weights, uniform_targets};
    use umpa_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny);
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.add_edge(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    b.add_edge(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.build_symmetric()
    }

    #[test]
    fn four_way_grid_partition_is_balanced() {
        let g = grid(16, 16);
        let targets = uniform_targets(&g, 4);
        let part = recursive_bisection(&g, &targets, &MlConfig::default());
        assert_eq!(*part.iter().max().unwrap(), 3);
        let imb = imbalance(&g, &part, &targets);
        assert!(imb <= 0.12, "imbalance {imb}");
        let cut = edge_cut(&g, &part);
        assert!(cut <= 2.5 * 32.0, "cut {cut} too far from optimal ~32");
    }

    #[test]
    fn respects_nonuniform_targets() {
        let g = grid(12, 12); // weight 144
        let targets = vec![72.0, 36.0, 36.0];
        let part = recursive_bisection(&g, &targets, &MlConfig::default());
        let w = part_weights(&g, &part, 3);
        assert!((w[0] - 72.0).abs() <= 10.0, "w0={}", w[0]);
        assert!((w[1] - 36.0).abs() <= 8.0, "w1={}", w[1]);
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = grid(4, 4);
        let part = recursive_bisection(&g, &[16.0], &MlConfig::default());
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn many_parts_all_nonempty() {
        let g = grid(16, 16);
        let targets = uniform_targets(&g, 16);
        let part = recursive_bisection(&g, &targets, &MlConfig::default());
        let w = part_weights(&g, &part, 16);
        assert!(w.iter().all(|&x| x > 0.0), "empty part: {w:?}");
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7u32 {
            b.add_edge(i, i + 1, 1.0);
        }
        // One heavy vertex.
        b.vertex_weights(vec![7.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let g = b.build_symmetric();
        let targets = vec![7.0, 7.0];
        let part = recursive_bisection(&g, &targets, &MlConfig::default());
        let w = part_weights(&g, &part, 2);
        assert!(
            (w[0] - 7.0).abs() <= 1.5 && (w[1] - 7.0).abs() <= 1.5,
            "{w:?}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(10, 10);
        let t = uniform_targets(&g, 8);
        let cfg = MlConfig {
            seed: 42,
            ..MlConfig::default()
        };
        assert_eq!(
            recursive_bisection(&g, &t, &cfg),
            recursive_bisection(&g, &t, &cfg)
        );
    }
}
