//! Graph bisection: greedy graph growing + Fiduccia–Mattheyses
//! refinement, wrapped in a multilevel V-cycle.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_ds::IndexedMaxHeap;
use umpa_graph::Graph;

use crate::coarsen::coarsen_until;

/// Parameters of a (multilevel) bisection.
#[derive(Clone, Copy, Debug)]
pub struct BisectConfig {
    /// Allowed relative overload of either side, e.g. `0.05`.
    pub epsilon: f64,
    /// Greedy-graph-growing restarts at the coarsest level.
    pub init_trials: u32,
    /// Maximum FM passes per level.
    pub fm_passes: u32,
    /// Coarsen until this many vertices remain.
    pub coarsen_to: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BisectConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            init_trials: 4,
            fm_passes: 4,
            coarsen_to: 96,
            seed: 1,
        }
    }
}

/// Side weights of a bisection.
fn side_weights(g: &Graph, side: &[u8]) -> (f64, f64) {
    let mut wl = 0.0;
    let mut wr = 0.0;
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            wl += g.vertex_weight(v as u32);
        } else {
            wr += g.vertex_weight(v as u32);
        }
    }
    (wl, wr)
}

/// Cut weight of a bisection (undirected edges counted once).
pub fn bisection_cut(g: &Graph, side: &[u8]) -> f64 {
    let mut cut = 0.0;
    for (u, v, w) in g.all_edges() {
        if side[u as usize] != side[v as usize] {
            cut += w;
        }
    }
    cut / 2.0
}

/// Greedy graph growing: grows side 0 from a seed vertex by maximum
/// connectivity until it reaches `target_left` weight.
fn grow_from(g: &Graph, seed_vertex: u32, target_left: f64) -> Vec<u8> {
    let n = g.num_vertices();
    let mut side = vec![1u8; n];
    let mut conn = IndexedMaxHeap::new(n);
    let mut weight = 0.0;
    let mut grown = 0usize;
    let mut cursor = seed_vertex;
    loop {
        // Bring `cursor` into side 0.
        side[cursor as usize] = 0;
        weight += g.vertex_weight(cursor);
        grown += 1;
        conn.remove(cursor);
        if weight >= target_left || grown == n {
            break;
        }
        for (u, w) in g.edges(cursor) {
            if side[u as usize] == 1 {
                conn.add_to_key(u, w);
            }
        }
        cursor = match conn.pop() {
            Some((u, _)) => u,
            None => {
                // Disconnected: jump to the heaviest-degree unreached vertex.
                match (0..n as u32)
                    .filter(|&u| side[u as usize] == 1)
                    .max_by(|&a, &b| {
                        g.weighted_degree(a)
                            .partial_cmp(&g.weighted_degree(b))
                            .unwrap()
                            .then(b.cmp(&a))
                    }) {
                    Some(u) => u,
                    None => break,
                }
            }
        };
    }
    side
}

/// Initial bisection: best-of-`trials` greedy growths from random seeds.
pub fn initial_bisection(g: &Graph, target_left: f64, trials: u32, seed: u64) -> Vec<u8> {
    let n = g.num_vertices();
    assert!(n >= 2, "cannot bisect fewer than two vertices");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<u8>)> = None;
    for _ in 0..trials.max(1) {
        let s = rng.gen_range(0..n as u32);
        let side = grow_from(g, s, target_left);
        let cut = bisection_cut(g, &side);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

/// One FM refinement run (up to `max_passes` passes) on a bisection.
///
/// Moves are accepted while either side stays within `(1+epsilon)` of
/// its target; each pass moves greedily (allowing negative gains),
/// records the best feasible prefix and rolls back the rest — the
/// classic hill-climbing that lets FM escape local minima. Returns the
/// final cut.
pub fn fm_refine(
    g: &Graph,
    side: &mut [u8],
    target_left: f64,
    target_right: f64,
    epsilon: f64,
    max_passes: u32,
) -> f64 {
    let n = g.num_vertices();
    let limit_l = target_left * (1.0 + epsilon);
    let limit_r = target_right * (1.0 + epsilon);
    // States are ranked by (overload, cut), lexicographically: a balanced
    // partition always beats an unbalanced one, so FM can start from an
    // infeasible projection and walk it feasible even at a cut cost.
    let overload = |wl: f64, wr: f64| (wl - limit_l).max(0.0) + (wr - limit_r).max(0.0);
    let mut cut = bisection_cut(g, side);
    for _ in 0..max_passes {
        let (mut wl, mut wr) = side_weights(g, side);
        // Gains: external − internal edge weight.
        let mut gain = vec![0.0f64; n];
        for (u, v, w) in g.all_edges() {
            if side[u as usize] != side[v as usize] {
                gain[u as usize] += w;
            } else {
                gain[u as usize] -= w;
            }
        }
        let mut heaps = [IndexedMaxHeap::new(n), IndexedMaxHeap::new(n)];
        for v in 0..n as u32 {
            heaps[side[v as usize] as usize].push(v, gain[v as usize]);
        }
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;
        let mut running = cut;
        let mut best = (overload(wl, wr), cut);
        loop {
            // Candidate from each side. A receiving side may exceed its
            // limit only while the sending side is itself overloaded
            // (rebalancing an infeasible projection).
            let pick = |h: &IndexedMaxHeap, from: u8, wl: f64, wr: f64| -> Option<(u32, f64)> {
                let (v, gkey) = h.peek()?;
                let vw = g.vertex_weight(v);
                let ok = if from == 0 {
                    wr + vw <= limit_r || wl > limit_l
                } else {
                    wl + vw <= limit_l || wr > limit_r
                };
                ok.then_some((v, gkey))
            };
            let c0 = pick(&heaps[0], 0, wl, wr);
            let c1 = pick(&heaps[1], 1, wl, wr);
            let (v, from) = match (c0, c1) {
                (None, None) => break,
                (Some((v, _)), None) => (v, 0u8),
                (None, Some((v, _))) => (v, 1u8),
                (Some((v0, g0)), Some((v1, g1))) => {
                    // Higher gain; ties → relieve the more loaded side.
                    if g0 > g1 || (g0 == g1 && wl / target_left >= wr / target_right) {
                        (v0, 0)
                    } else {
                        (v1, 1)
                    }
                }
            };
            let to = 1 - from;
            heaps[from as usize].remove(v);
            locked[v as usize] = true;
            running -= gain[v as usize];
            let vw = g.vertex_weight(v);
            if from == 0 {
                wl -= vw;
                wr += vw;
            } else {
                wr -= vw;
                wl += vw;
            }
            side[v as usize] = to;
            moves.push(v);
            // Update neighbor gains.
            for (u, w) in g.edges(v) {
                if locked[u as usize] {
                    continue;
                }
                let delta = if side[u as usize] == to {
                    -2.0 * w
                } else {
                    2.0 * w
                };
                gain[u as usize] += delta;
                let h = &mut heaps[side[u as usize] as usize];
                if h.contains(u) {
                    h.change_key(u, gain[u as usize]);
                }
            }
            let state = (overload(wl, wr), running);
            if state.0 < best.0 - 1e-12 || (state.0 <= best.0 + 1e-12 && state.1 < best.1 - 1e-12) {
                best = state;
                best_prefix = moves.len();
            }
        }
        // Roll back moves after the best prefix.
        for &v in moves.iter().skip(best_prefix) {
            side[v as usize] = 1 - side[v as usize];
        }
        if best_prefix == 0 {
            break;
        }
        cut = best.1;
    }
    cut
}

/// Multilevel bisection: coarsen, grow, refine while uncoarsening.
///
/// `target_left` is the desired total vertex weight of side 0.
pub fn multilevel_bisect(g: &Graph, target_left: f64, cfg: &BisectConfig) -> Vec<u8> {
    let total = g.total_vertex_weight();
    let target_right = total - target_left;
    let levels = coarsen_until(g, cfg.coarsen_to, cfg.seed);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(g);
    let mut side = initial_bisection(coarsest, target_left, cfg.init_trials, cfg.seed);
    fm_refine(
        coarsest,
        &mut side,
        target_left,
        target_right,
        cfg.epsilon,
        cfg.fm_passes,
    );
    // Project back through the levels, refining at each.
    for i in (0..levels.len()).rev() {
        let finer = if i == 0 { g } else { &levels[i - 1].graph };
        let map = &levels[i].map;
        let mut fine_side = vec![0u8; finer.num_vertices()];
        for v in 0..finer.num_vertices() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        fm_refine(
            finer,
            &mut side,
            target_left,
            target_right,
            cfg.epsilon,
            cfg.fm_passes,
        );
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny);
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.add_edge(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    b.add_edge(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.build_symmetric()
    }

    #[test]
    fn grow_reaches_target_weight() {
        let g = grid(8, 8);
        let side = grow_from(&g, 0, 32.0);
        let (wl, wr) = side_weights(&g, &side);
        assert_eq!(wl, 32.0);
        assert_eq!(wr, 32.0);
    }

    #[test]
    fn fm_improves_a_bad_bisection() {
        let g = grid(8, 8);
        // Interleaved columns: terrible cut.
        let mut side: Vec<u8> = (0..64).map(|i| ((i % 8) % 2) as u8).collect();
        let before = bisection_cut(&g, &side);
        let after = fm_refine(&g, &mut side, 32.0, 32.0, 0.05, 8);
        assert!(after < before, "FM failed: {before} -> {after}");
        assert!((bisection_cut(&g, &side) - after).abs() < 1e-9);
        let (wl, wr) = side_weights(&g, &side);
        assert!(wl <= 32.0 * 1.05 && wr <= 32.0 * 1.05);
    }

    #[test]
    fn fm_never_worsens() {
        let g = grid(6, 6);
        for seed in 0..5u64 {
            let mut side = initial_bisection(&g, 18.0, 1, seed);
            let before = bisection_cut(&g, &side);
            let after = fm_refine(&g, &mut side, 18.0, 18.0, 0.05, 4);
            assert!(after <= before + 1e-9);
        }
    }

    #[test]
    fn multilevel_finds_near_optimal_grid_cut() {
        // An 16x8 grid split in half has an optimal cut of 8.
        let g = grid(16, 8);
        let cfg = BisectConfig {
            seed: 3,
            ..BisectConfig::default()
        };
        let side = multilevel_bisect(&g, 64.0, &cfg);
        let cut = bisection_cut(&g, &side);
        let (wl, wr) = side_weights(&g, &side);
        assert!(wl <= 64.0 * 1.05 && wr <= 64.0 * 1.05, "wl={wl} wr={wr}");
        assert!(cut <= 12.0, "cut too high: {cut}");
    }

    #[test]
    fn asymmetric_targets_respected() {
        let g = grid(10, 10);
        let cfg = BisectConfig::default();
        let side = multilevel_bisect(&g, 25.0, &cfg);
        let (wl, _) = side_weights(&g, &side);
        assert!(
            (20.0..=31.0).contains(&wl),
            "side-0 weight {wl} far from target 25"
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two 4x4 grids, no edges between them.
        let a = grid(4, 4);
        let mut b = GraphBuilder::new(32);
        for (u, v, w) in a.all_edges() {
            b.add_edge(u, v, w);
            b.add_edge(u + 16, v + 16, w);
        }
        let g = b.build_directed();
        let side = multilevel_bisect(&g, 16.0, &BisectConfig::default());
        let (wl, wr) = side_weights(&g, &side);
        assert!((wl - 16.0).abs() <= 2.0, "wl={wl} wr={wr}");
    }
}
