//! `umpa-partition` — a from-scratch multilevel graph partitioner and
//! the seven partitioner presets of the paper's evaluation.
//!
//! The paper's pipeline assumes a partitioning phase: matrices are cut
//! into K parts by SCOTCH / KAFFPA / METIS / PATOH / UMPA variants
//! (Figure 1), and the resulting task graph is later partitioned again
//! into `|Va|` node-groups by METIS before mapping (Section III-A).
//! None of those tools exist here, so this crate implements the whole
//! stack:
//!
//! * [`coarsen`] — heavy-edge matching and coarse-graph construction;
//! * [`bisect`] — greedy-graph-growing initial bisection plus
//!   Fiduccia–Mattheyses boundary refinement with rollback;
//! * [`recursive`] — recursive bisection to arbitrary `k` with
//!   per-part target weights (needed because node processor counts may
//!   be non-uniform);
//! * [`balance`] — the paper's post-processing: "we fix the balance
//!   with a small sacrifice on the edge-cut metric via a single
//!   Fiduccia–Mattheyses iteration";
//! * [`comm_refine`] — objective-aware refinement over the *matrix*
//!   communication structure (TV / MSV / MSM / TM), which is what
//!   differentiates the volume-minimizing and multi-objective presets;
//! * [`presets`] — the seven named partitioners of Figure 1;
//! * [`metrics`] — edge cut and imbalance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod bisect;
pub mod coarsen;
pub mod comm_refine;
pub mod metrics;
pub mod presets;
pub mod recursive;

pub use balance::fix_balance;
pub use metrics::{edge_cut, imbalance};
pub use presets::PartitionerKind;
pub use recursive::{recursive_bisection, MlConfig};

/// Commonly used items.
pub mod prelude {
    pub use crate::balance::fix_balance;
    pub use crate::metrics::{edge_cut, imbalance};
    pub use crate::presets::PartitionerKind;
    pub use crate::recursive::{recursive_bisection, MlConfig};
}
