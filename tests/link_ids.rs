//! Regression tests for the link-id space: canonical undirected ids on
//! extent-2 wraparound dimensions and an exact (phantom-free) id space
//! on extent-1 dimensions.
//!
//! The exact congestion refinement (Algorithm 3) relies on every
//! message between the same router pair hitting the same link counter.
//! On a wraparound dimension of extent 2 both directions tie-break to
//! `positive`, so a hop-direction-derived id scheme splits a↔b traffic
//! across two ids and silently underreports MC/MMC/AC. The topology now
//! owns the id space and assigns undirected ids canonically (min
//! endpoint), which these tests pin down.

use umpa::prelude::*;

#[test]
fn extent_two_wraparound_routes_share_undirected_ids() {
    let mut cfg = MachineConfig::small(&[2, 4], 1, 1);
    cfg.link_mode = LinkMode::Undirected;
    let m = cfg.build();
    // Every adjacent pair across the extent-2 dimension crosses the
    // same physical link in both directions (both tie-break to
    // `positive`): the ids must be identical. Pairs whose routes also
    // differ in dimension 1 legally use different links (dimension-
    // ordered routes traverse different rows), so only the extent-2
    // crossings are pinned here.
    for y in 0..4u32 {
        let (a, b) = (y * 2, y * 2 + 1); // routers (0, y) and (1, y)
        let ab = m.route_links_vec(a, b);
        let ba = m.route_links_vec(b, a);
        assert_eq!(ab.len(), 1, "adjacent pair must be one hop");
        assert_eq!(ab, ba, "routes {a}->{b} and {b}->{a} disagree on link ids");
    }
}

#[test]
fn extent_two_wraparound_congestion_accumulates_on_one_counter() {
    let mut cfg = MachineConfig::small(&[2, 4], 1, 1);
    cfg.link_mode = LinkMode::Undirected;
    let m = cfg.build();
    // Nodes 0 and 1 sit on adjacent routers across the extent-2 dim.
    // A symmetric pattern: both directions must land on ONE link
    // counter, so MMC = 2 and MC = 5 (volumes 2 + 3 over bw 1).
    let tg = TaskGraph::from_messages(2, [(0, 1, 2.0), (1, 0, 3.0)], None);
    let r = evaluate(&tg, &m, &[0, 1]);
    assert_eq!(r.used_links, 1, "both directions must share one link");
    assert_eq!(r.mmc, 2.0);
    assert_eq!(r.mc, 5.0);
    // TH identity must also hold.
    let sum: f64 = r.msg_congestion.iter().sum();
    assert!((r.th - sum).abs() < 1e-9);
}

#[test]
fn extent_one_dimensions_carry_no_phantom_links() {
    // A [1, 4] torus has no links along dimension 0 at all: the id
    // space must contain exactly the 4 dim-1 ring links (8 directed
    // channels), not 8 slots with dead-but-nonzero bandwidth.
    let m = MachineConfig::small(&[1, 4], 1, 1).build();
    assert_eq!(m.num_links(), 8, "directed: 4 physical ring links x 2");
    let mut cfg = MachineConfig::small(&[1, 4], 1, 1);
    cfg.link_mode = LinkMode::Undirected;
    let m = cfg.build();
    assert_eq!(m.num_links(), 4);
    // Every id in the space is routable: a full traffic sweep touches
    // every link (a ring's dimension-ordered routes cover all links).
    let tg = TaskGraph::from_messages(
        4,
        (0..4u32).flat_map(|i| (0..4u32).filter(move |&j| j != i).map(move |j| (i, j, 1.0))),
        None,
    );
    let mapping: Vec<u32> = (0..4).collect();
    let r = evaluate(&tg, &m, &mapping);
    assert_eq!(
        r.used_links,
        m.num_links(),
        "id space contains unroutable phantom slots"
    );
}

#[test]
fn mesh_boundaries_carry_no_phantom_links() {
    // An open [4] mesh has 3 physical links, not 4.
    let m = MachineConfig::small_mesh(&[4], 1, 1).build();
    assert_eq!(m.num_links(), 6, "directed: 3 physical links x 2");
}
