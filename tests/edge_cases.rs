//! Edge-case and failure-injection tests: the degenerate inputs a
//! downstream user will eventually feed the library.

use umpa::core::mapping::validate_mapping;
use umpa::core::multilevel::MultilevelConfig;
use umpa::core::pipeline::map_multilevel;
use umpa::matgen::spmv::spmv_task_graph;
use umpa::matgen::SparsePattern;
use umpa::prelude::*;

#[test]
fn empty_task_graph_through_the_pipeline() {
    let machine = MachineConfig::small(&[4], 1, 1).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(2));
    let tg = TaskGraph::from_messages(0, [], None);
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        assert!(out.fine_mapping.is_empty(), "{}", kind.name());
    }
}

#[test]
fn single_task_maps_somewhere_valid() {
    let machine = MachineConfig::small(&[4, 4], 2, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(3, 9));
    let tg = TaskGraph::from_messages(1, [], None);
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn tasks_with_no_messages_at_all() {
    let machine = MachineConfig::small(&[4], 1, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(4));
    // 8 isolated tasks, zero edges.
    let tg = TaskGraph::from_messages(8, [], None);
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let m = evaluate(&tg, &machine, &out.fine_mapping);
        assert_eq!(m.th, 0.0);
        assert_eq!(m.used_links, 0);
    }
}

#[test]
fn exact_fit_allocation_leaves_no_slack() {
    // 8 tasks, 4 nodes × 2 procs: every node must end exactly full.
    let machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(4, 2));
    let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 1) % 8, 1.0)), None);
    let cfg = PipelineConfig::default();
    for kind in [
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
    ] {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        let mut per_node = std::collections::HashMap::new();
        for &n in &out.fine_mapping {
            *per_node.entry(n).or_insert(0u32) += 1;
        }
        assert!(per_node.values().all(|&c| c == 2), "{}", kind.name());
    }
}

#[test]
fn one_part_partition_is_trivial() {
    let a = umpa::matgen::gen::stencil2d(6, 6, umpa::matgen::gen::Stencil2D::FivePoint);
    let part = PartitionerKind::Patoh.partition_matrix(&a, 1, 0);
    assert!(part.iter().all(|&p| p == 0));
    let tg = spmv_task_graph(&a, &part, 1);
    assert_eq!(tg.num_messages(), 0);
}

#[test]
fn matrix_without_diagonal_still_works() {
    // Rows that do not reference their own column exercise the
    // ownership-change corner of the comm refiner.
    let a = SparsePattern::from_entries(4, 4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (0, 3)]);
    for kind in PartitionerKind::all() {
        let part = kind.partition_matrix(&a, 2, 1);
        let tg = spmv_task_graph(&a, &part, 2);
        // Sanity: metrics computable, volumes finite.
        assert!(tg.total_volume().is_finite(), "{}", kind.name());
    }
}

#[test]
fn zero_volume_messages_do_not_poison_metrics() {
    let machine = MachineConfig::small(&[4], 1, 1).build();
    let tg = TaskGraph::from_messages(3, [(0, 1, 0.0), (1, 2, 5.0)], None);
    let m = evaluate(&tg, &machine, &[0, 1, 2]);
    assert_eq!(m.th, 2.0); // both messages still travel
    assert_eq!(m.wh, 5.0); // but only one carries volume
    assert!(m.mc.is_finite());
}

#[test]
fn allocation_covering_the_whole_machine() {
    let machine = MachineConfig::small(&[2, 2], 2, 1).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(8));
    assert_eq!(alloc.num_nodes(), machine.num_nodes());
    let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 3) % 8, 1.0)), None);
    let cfg = PipelineConfig::default();
    let out = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    validate_mapping(&tg, &alloc, &out.fine_mapping).unwrap();
}

#[test]
fn self_messages_are_dropped_by_construction() {
    let tg = TaskGraph::from_messages(2, [(0, 0, 99.0), (0, 1, 1.0)], None);
    assert_eq!(tg.num_messages(), 1);
    assert_eq!(tg.total_volume(), 1.0);
}

/// Multilevel config that would coarsen anything coarsenable — the
/// degenerate inputs below must survive it regardless.
fn eager_ml_cfg() -> PipelineConfig {
    PipelineConfig {
        multilevel: MultilevelConfig {
            coarsen_min: 1,
            coarsen_factor: 0.5,
            ..MultilevelConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// The greedy family — the kinds the multilevel engine maps itself.
const ML_KINDS: [MapperKind; 4] = [
    MapperKind::Greedy,
    MapperKind::GreedyWh,
    MapperKind::GreedyMc,
    MapperKind::GreedyMmc,
];

#[test]
fn multilevel_zero_and_single_task() {
    let machine = MachineConfig::small(&[4, 4], 2, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(3, 9));
    let cfg = eager_ml_cfg();
    for kind in ML_KINDS {
        let empty = TaskGraph::from_messages(0, [], None);
        let out = map_multilevel(&empty, &machine, &alloc, kind, &cfg);
        assert!(out.fine_mapping.is_empty(), "{}", kind.name());
        let single = TaskGraph::from_messages(1, [], None);
        let out = map_multilevel(&single, &machine, &alloc, kind, &cfg);
        validate_mapping(&single, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn multilevel_fewer_tasks_than_nodes() {
    let machine = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 4));
    // 5 tasks on 8 nodes; the ring still coarsens under the eager config.
    let tg = TaskGraph::from_messages(5, (0..5u32).map(|i| (i, (i + 1) % 5, 2.0)), None);
    let cfg = eager_ml_cfg();
    for kind in ML_KINDS {
        let out = map_multilevel(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn multilevel_empty_comm_graph_cannot_coarsen() {
    // 16 isolated tasks: no matchable edges at all, so coarsening must
    // stall gracefully and the engine maps the fine graph directly.
    let machine = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(6, 2));
    let tg = TaskGraph::from_messages(16, [], None);
    let cfg = eager_ml_cfg();
    for kind in ML_KINDS {
        let out = map_multilevel(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let m = evaluate(&tg, &machine, &out.fine_mapping);
        assert_eq!(m.th, 0.0, "{}", kind.name());
    }
}

#[test]
fn multilevel_star_graph_collapses_to_one_vertex() {
    // A 9-task star: only hub–leaf merges are possible, one per level,
    // until the whole star is a single coarse vertex (light enough to
    // fit one node). The engine must neither panic nor split it.
    let machine = MachineConfig::small(&[4], 1, 8).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(4));
    let tg = TaskGraph::from_messages(9, (1..9u32).map(|leaf| (0, leaf, 1.0)), Some(vec![0.25; 9]));
    let cfg = eager_ml_cfg();
    for kind in ML_KINDS {
        let out = map_multilevel(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
    // Under UWH the fully collapsed star lands on a single node: the
    // whole graph's weight is 2.25 of an 8-proc node, so every message
    // should end node-local.
    let out = map_multilevel(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    let m = evaluate(&tg, &machine, &out.fine_mapping);
    assert_eq!(m.th, 0.0, "collapsed star should be colocated");
}

#[test]
fn multilevel_heavy_tasks_that_cannot_merge() {
    // Every task already weighs more than half a node: the capacity cap
    // blocks every merge (another cannot-coarsen shape), and the fine
    // graph maps directly.
    let machine = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 6));
    let tg = TaskGraph::from_messages(
        8,
        (0..8u32).map(|i| (i, (i + 1) % 8, 1.0)),
        Some(vec![3.0; 8]),
    );
    let cfg = eager_ml_cfg();
    for kind in ML_KINDS {
        let out = map_multilevel(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn nnls_on_degenerate_inputs() {
    use umpa::analysis::{nnls, Matrix};
    // All-zero design matrix → zero solution, no panic.
    let a = Matrix::zeros(3, 2);
    let x = nnls(&a, &[1.0, 2.0, 3.0]);
    assert_eq!(x, vec![0.0, 0.0]);
    // Single row.
    let a = Matrix::from_rows(&[vec![2.0, 4.0]]);
    let x = nnls(&a, &[8.0]);
    let fit = 2.0 * x[0] + 4.0 * x[1];
    assert!((fit - 8.0).abs() < 1e-6);
}

#[test]
fn single_node_allocation_accepts_everything() {
    let machine = MachineConfig::small(&[4], 1, 8).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(1));
    let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 1) % 8, 2.0)), None);
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        // Everything on one node → zero network traffic.
        let m = evaluate(&tg, &machine, &out.fine_mapping);
        assert_eq!(m.th, 0.0, "{}", kind.name());
    }
}
