//! Crash-point chaos harness for the durability subsystem
//! (DESIGN.md §18).
//!
//! Sweeps every [`CrashPoint`] — before/inside/after each journal
//! frame write and each snapshot fsync/rename step — over
//! `umpa_matgen::churn` streams on three topology backends, killing
//! the write path at the injected point, then recovering from disk
//! and asserting the contract:
//!
//! * the recovered resident job (mapping words, `RemapDrift` bits,
//!   fault mask, allocation membership, live WH bits) is
//!   **bit-identical** to an uninterrupted run over the surviving
//!   operation prefix (`RecoveryReport::last_seq`);
//! * torn frames are *truncated*, never parsed
//!   (`truncated_bytes > 0` whenever a frame was cut short);
//! * seeded byte corruption of the journal tail truncates to the last
//!   checksum-valid frame, and a corrupt snapshot falls back
//!   (`snapshot.old.bin`, then genesis + full replay) — a bad frame
//!   or snapshot is never silently accepted;
//! * recovery never panics — corrupt input surfaces as truncation
//!   (reported) or a typed `RecoveryError`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use umpa::core::ChurnEvent;
use umpa::graph::TaskGraph;
use umpa::matgen::churn::{churn_sequence, ChurnSpec};
use umpa::matgen::corruption_points;
use umpa::service::{
    CrashPoint, CrashSwitch, DurabilityConfig, MappingService, RecoveryError, ServiceConfig,
    SnapshotSource,
};
use umpa::topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, FaultSnapshot, Machine, MachineConfig,
};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty durability directory unique to this process + call.
fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("umpa-recovery-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ring + chords with skewed weights — structure to lose, so drift
/// and repair decisions are data-dependent.
fn task_graph(n: u32, seed: u64) -> TaskGraph {
    let n = n.max(4);
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

/// Three backends, each with an allocation that stays
/// capacity-feasible at the churn generator's 25 % removal cap.
fn backends() -> Vec<(&'static str, u32, Machine, Allocation)> {
    let torus = MachineConfig::small(&[4, 4, 4], 2, 2).build();
    let torus_alloc = Allocation::generate(&torus, &AllocSpec::sparse(24, 7));
    let fattree = FatTreeConfig::small(4, 2, 2).build();
    let ft_alloc = Allocation::generate(&fattree, &AllocSpec::sparse(12, 3));
    let dragonfly = DragonflyConfig {
        procs_per_node: 2,
        ..DragonflyConfig::small(4, 3, 2)
    }
    .build();
    let df_alloc = Allocation::generate(&dragonfly, &AllocSpec::sparse(16, 5));
    vec![
        ("torus", 32, torus, torus_alloc),
        ("fattree", 16, fattree, ft_alloc),
        ("dragonfly", 20, dragonfly, df_alloc),
    ]
}

fn durable_cfg(dir: &Path, snapshot_every: u64, crash: Option<CrashSwitch>) -> ServiceConfig {
    ServiceConfig {
        workers: 0,
        durability: Some(DurabilityConfig {
            snapshot_every,
            crash,
            ..DurabilityConfig::new(dir)
        }),
        ..ServiceConfig::default()
    }
}

fn plain_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    }
}

/// Everything the bit-identity contract covers, with floats as raw
/// bits so `==` is exact.
#[derive(Debug, PartialEq)]
struct StateDigest {
    mapping: Option<Vec<u32>>,
    drift: Option<(u64, u64, u64, u64)>,
    wh_bits: Option<u64>,
    fault: FaultSnapshot,
    alloc_nodes: Vec<u32>,
}

fn digest(service: &MappingService) -> StateDigest {
    StateDigest {
        mapping: service.live_mapping(),
        drift: service.drift().map(|d| {
            (
                d.repairs,
                d.displaced_total,
                d.wh_delta_total.to_bits(),
                d.wh_last.to_bits(),
            )
        }),
        wh_bits: service.live_wh().map(f64::to_bits),
        fault: service.with_state(|m, _| m.fault_snapshot()),
        alloc_nodes: service.with_state(|_, a| a.nodes().to_vec()),
    }
}

/// Drives the journaled operation sequence the sweep uses: one
/// install frame, then one churn frame per event. With `workers: 0`
/// nothing else touches the journal, so frame `seq` `k+1` is exactly
/// `events[k]` (seq 1 is the install).
fn run_ops(service: &MappingService, graph: &Arc<TaskGraph>, events: &[ChurnEvent]) {
    service.install_job(Arc::clone(graph));
    for ev in events {
        service.apply_churn(std::slice::from_ref(ev));
    }
}

/// Reference run for a surviving prefix: a fresh *non-durable*
/// service replaying `last_seq` operations from genesis.
fn reference_digest(
    machine: &Machine,
    alloc: &Allocation,
    graph: &Arc<TaskGraph>,
    events: &[ChurnEvent],
    last_seq: u64,
) -> StateDigest {
    let reference = MappingService::new(machine.clone(), alloc.clone(), plain_cfg());
    if last_seq >= 1 {
        reference.install_job(Arc::clone(graph));
        let surviving = (last_seq - 1) as usize;
        for ev in &events[..surviving] {
            reference.apply_churn(std::slice::from_ref(ev));
        }
    }
    digest(&reference)
}

#[test]
fn crash_sweep_recovers_bit_identical_on_all_backends() {
    for (name, tasks, machine, alloc) in backends() {
        let streams = [
            ("mixed", ChurnSpec::new(10, 11)),
            ("nodes", ChurnSpec::nodes_only(10, 23)),
        ];
        for (stream_tag, spec) in streams {
            let events = churn_sequence(&machine, &alloc, &spec);
            let graph = Arc::new(task_graph(tasks, 1));
            for point in CrashPoint::ALL {
                for nth in [1u32, 2, 5] {
                    let ctx = format!("{name}/{stream_tag}/{point:?}/nth={nth}");
                    let dir = fresh_dir(name);
                    let switch = CrashSwitch::new();
                    switch.arm(point, nth);
                    let service = MappingService::new(
                        machine.clone(),
                        alloc.clone(),
                        durable_cfg(&dir, 4, Some(switch.clone())),
                    );
                    run_ops(&service, &graph, &events);
                    // The crash already severed the journal; the
                    // in-memory state dies with the process (here:
                    // with the drop).
                    drop(service);

                    let (recovered, report) = MappingService::recover(
                        machine.clone(),
                        alloc.clone(),
                        durable_cfg(&dir, 4, None),
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));

                    let total = events.len() as u64 + 1;
                    assert!(report.last_seq <= total, "{ctx}: impossible history length");
                    if !switch.fired() {
                        // Crash point never reached: nothing may be lost.
                        assert_eq!(report.last_seq, total, "{ctx}: lost frames without a crash");
                        assert_eq!(report.truncated_bytes, 0, "{ctx}");
                    }
                    if switch.fired() && point == CrashPoint::MidFrame {
                        assert!(
                            report.truncated_bytes > 0,
                            "{ctx}: a mid-frame crash must leave a torn tail"
                        );
                    }
                    let expect =
                        reference_digest(&machine, &alloc, &graph, &events, report.last_seq);
                    assert_eq!(
                        digest(&recovered),
                        expect,
                        "{ctx}: recovered state diverged"
                    );
                    drop(recovered);
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

/// Crash, recover, *keep going*, crash again: journaling resumes on
/// the surviving file (sequence numbers continue), so crash/recover
/// cycles compose into one consistent history.
#[test]
fn recovery_composes_across_repeated_crashes() {
    let (_, tasks, machine, alloc) = backends().swap_remove(0);
    let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(12, 31));
    let graph = Arc::new(task_graph(tasks, 1));
    let dir = fresh_dir("compose");

    let switch = CrashSwitch::new();
    switch.arm(CrashPoint::MidFrame, 4);
    let service = MappingService::new(
        machine.clone(),
        alloc.clone(),
        durable_cfg(&dir, 4, Some(switch.clone())),
    );
    run_ops(&service, &graph, &events);
    drop(service);
    assert!(switch.fired());

    // First recovery: resume from the torn journal, then apply the
    // ops the crash swallowed.
    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None))
            .expect("first recovery");
    assert!(report.truncated_bytes > 0);
    let done = (report.last_seq.saturating_sub(1)) as usize;
    for ev in &events[done..] {
        recovered.apply_churn(std::slice::from_ref(ev));
    }
    drop(recovered);

    // Second recovery sees the full history.
    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None))
            .expect("second recovery");
    assert_eq!(report.last_seq, events.len() as u64 + 1);
    assert_eq!(report.truncated_bytes, 0);
    let expect = reference_digest(&machine, &alloc, &graph, &events, report.last_seq);
    assert_eq!(digest(&recovered), expect);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded byte corruption of the journal tail: recovery truncates to
/// the last checksum-valid frame and restores that prefix
/// bit-identically — never parses a corrupt frame, never panics.
#[test]
fn corrupted_journal_tail_truncates_to_valid_prefix() {
    let (_, tasks, machine, alloc) = backends().swap_remove(0);
    let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(10, 47));
    let graph = Arc::new(task_graph(tasks, 1));

    for seed in [1u64, 2, 3] {
        let dir = fresh_dir("corrupt");
        let service = MappingService::new(
            machine.clone(),
            alloc.clone(),
            // Journal-only (no snapshots): corruption must cost
            // exactly the frames at and after the first flipped byte.
            durable_cfg(&dir, 0, None),
        );
        run_ops(&service, &graph, &events);
        drop(service);

        let jpath = dir.join("journal.bin");
        let mut bytes = std::fs::read(&jpath).expect("read journal");
        let len = bytes.len() as u64;
        let tail_from = len * 3 / 4;
        let points = corruption_points(len, tail_from, 3, seed);
        assert!(!points.is_empty());
        for &(off, mask) in &points {
            bytes[off as usize] ^= mask;
        }
        std::fs::write(&jpath, &bytes).expect("write corrupted journal");

        let (recovered, report) =
            MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 0, None))
                .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        assert!(
            report.truncated_bytes > 0,
            "seed {seed}: flipped bytes must truncate the tail"
        );
        assert!(report.last_seq < events.len() as u64 + 1, "seed {seed}");
        let expect = reference_digest(&machine, &alloc, &graph, &events, report.last_seq);
        assert_eq!(digest(&recovered), expect, "seed {seed}: prefix diverged");
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupt primary snapshot falls back (rotated snapshot, then
/// genesis) and replays the journal — with the journal intact the
/// final state must still be the full-history state.
#[test]
fn corrupt_snapshot_falls_back_and_replays() {
    let (_, tasks, machine, alloc) = backends().swap_remove(0);
    let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(10, 61));
    let graph = Arc::new(task_graph(tasks, 1));
    let dir = fresh_dir("snapfall");

    let service = MappingService::new(machine.clone(), alloc.clone(), durable_cfg(&dir, 3, None));
    run_ops(&service, &graph, &events);
    drop(service);

    let spath = dir.join("snapshot.bin");
    let mut bytes = std::fs::read(&spath).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&spath, &bytes).expect("write corrupted snapshot");

    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 3, None))
            .expect("recovery with corrupt snapshot");
    assert!(report.corrupt_snapshots >= 1);
    assert_ne!(report.snapshot_source, SnapshotSource::Primary);
    assert_eq!(report.last_seq, events.len() as u64 + 1);
    let expect = reference_digest(&machine, &alloc, &graph, &events, report.last_seq);
    assert_eq!(digest(&recovered), expect);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retry and polish mutations are journaled and replayed through the
/// same paths, so a history containing infeasible repairs, forced
/// retries, capacity restoration and an explicit polish recovers
/// bit-identically — including across a snapshot boundary mid-stream.
#[test]
fn retry_and_polish_frames_replay_bit_identical() {
    let machine = FatTreeConfig::small(4, 2, 1).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(6, 3));
    let graph = Arc::new(task_graph(6, 2));
    let doomed: Vec<u32> = alloc.nodes()[..2].to_vec();
    let dir = fresh_dir("retry");

    let drive = |service: &MappingService| {
        service.install_job(Arc::clone(&graph));
        // Shrink below capacity: repair goes Infeasible, pending arms.
        service.apply_churn(&[ChurnEvent::NodesRemoved {
            nodes: doomed.clone(),
        }]);
        // Forced retry while still infeasible (journals a retry frame).
        service.retry_now();
        // Capacity back; the forced retry now succeeds.
        service.apply_churn(&[ChurnEvent::NodesAdded {
            nodes: doomed.clone(),
        }]);
        service.retry_now();
        // Explicit polish (journals a polish frame).
        service.polish_now();
    };

    let durable = MappingService::new(machine.clone(), alloc.clone(), durable_cfg(&dir, 3, None));
    drive(&durable);
    drop(durable);

    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 3, None))
            .expect("recovery");
    assert!(report.had_job);
    let reference = MappingService::new(machine.clone(), alloc.clone(), plain_cfg());
    drive(&reference);
    assert_eq!(digest(&recovered), digest(&reference));
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovering a directory that has never seen a service is legal:
/// genesis state, empty history, and the recovered service is fully
/// operational (journal created on the spot).
#[test]
fn recover_from_empty_directory_is_genesis() {
    let (_, tasks, machine, alloc) = backends().swap_remove(1);
    let dir = fresh_dir("genesis");
    std::fs::create_dir_all(&dir).expect("create dir");

    let (service, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None))
            .expect("genesis recovery");
    assert_eq!(report.snapshot_source, SnapshotSource::Genesis);
    assert_eq!(report.last_seq, 0);
    assert_eq!(report.frames_replayed, 0);
    assert!(!report.had_job);

    // The recovered (empty) service journals from seq 1 like a fresh one.
    let graph = Arc::new(task_graph(tasks, 1));
    service.install_job(Arc::clone(&graph));
    drop(service);
    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None))
            .expect("second recovery");
    assert_eq!(report.last_seq, 1);
    assert!(report.had_job);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a durability config there is nothing to recover from —
/// typed error, not a panic or a silent empty service.
#[test]
fn recover_without_durability_is_a_typed_error() {
    let (_, _, machine, alloc) = backends().swap_remove(0);
    let err = MappingService::recover(machine, alloc, plain_cfg());
    assert!(matches!(err, Err(RecoveryError::NotConfigured)));
}

/// A clean shutdown (no crash) recovers the exact full-history state.
#[test]
fn clean_shutdown_recovers_full_history() {
    for (name, tasks, machine, alloc) in backends() {
        let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(8, 77));
        let graph = Arc::new(task_graph(tasks, 1));
        let dir = fresh_dir("clean");
        let service =
            MappingService::new(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None));
        run_ops(&service, &graph, &events);
        let stats = service.shutdown();
        assert_eq!(stats.journal_errors, 0, "{name}");
        assert!(stats.journal_appends > events.len() as u64, "{name}");

        let (recovered, report) =
            MappingService::recover(machine.clone(), alloc.clone(), durable_cfg(&dir, 4, None))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.last_seq, events.len() as u64 + 1, "{name}");
        assert_eq!(report.truncated_bytes, 0, "{name}");
        let expect = reference_digest(&machine, &alloc, &graph, &events, report.last_seq);
        assert_eq!(digest(&recovered), expect, "{name}");
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
