//! Soak and robustness harness for the always-on mapping service
//! (DESIGN.md §16).
//!
//! Pins the service's three robustness contracts under sustained
//! interleaved load:
//!
//! * **shed, don't stall** — with the bounded queue enabled, every
//!   *accepted* request is answered within its deadline (the ladder
//!   degrades quality instead), queue depth never exceeds the
//!   configured bound, and overload shows up as explicit
//!   `Submit::Rejected`;
//! * **isolate, don't crash** — a deliberately poisoned (panicking)
//!   request is answered with a typed error and the worker keeps
//!   serving; infeasible repairs retry on a bounded backoff and
//!   surface `ServiceError::RepairExhausted`, never a panic;
//! * **supervise drift** — after a 500+-event churn+load stream, the
//!   drift supervisor keeps the resident job's live WH within 15 % of
//!   a from-scratch re-map of the final machine state.

use std::sync::Arc;

use umpa::core::greedy::weighted_hops;
use umpa::core::{greedy_map_into, wh_refine_scratch, ChurnEvent, MapperKind, MapperScratch};
use umpa::graph::TaskGraph;
use umpa::matgen::churn::{load_sequence, ChurnSpec, LoadEvent, LoadSpec};
use umpa::service::clock::ServiceClock;
use umpa::service::{
    LadderRung, MapJob, MappingService, ServiceConfig, ServiceError, Submit, SupervisorPolicy,
};
use umpa::topology::{AllocSpec, Allocation, Machine, MachineConfig};

/// Ring + chords with skewed weights — structure to lose, so drift
/// shows up in WH.
fn task_graph(n: u32, seed: u64) -> TaskGraph {
    let n = n.max(4);
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

/// 128-node torus (256 proc slots), 96 sparse allocated nodes: a
/// 128-task resident job stays capacity-feasible even at the churn
/// generator's 25 % removal cap (72 nodes × 2 procs = 144 slots).
fn setup() -> (Machine, Allocation) {
    let machine = MachineConfig::small(&[4, 4, 4], 2, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(96, 7));
    (machine, alloc)
}

/// From-scratch reference for the drift bound: greedy + full WH
/// refinement on the *current* machine/allocation — the same
/// computation the supervisor's baseline uses.
fn from_scratch_wh(tasks: &TaskGraph, machine: &Machine, alloc: &Allocation) -> f64 {
    let mut scratch = MapperScratch::new();
    let mut mapping = Vec::new();
    greedy_map_into(
        tasks,
        machine,
        alloc,
        &Default::default(),
        &mut scratch.greedy,
        &mut mapping,
    );
    wh_refine_scratch(
        tasks,
        machine,
        alloc,
        &mut mapping,
        &Default::default(),
        &mut scratch.wh,
    );
    weighted_hops(tasks, machine, &mapping)
}

#[test]
fn soak_500_events_sheds_survives_and_bounds_drift() {
    let (machine, alloc) = setup();
    let load = load_sequence(
        &machine,
        &alloc,
        &LoadSpec {
            events: 520,
            churn_fraction: 0.25,
            tasks: (32, 96),
            churn: ChurnSpec::new(0, 0),
            ..LoadSpec::new(520, 42)
        },
    );
    assert!(load.len() >= 500);

    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        pressure_depth: 6,
        default_deadline_ns: 2_000_000_000, // 2 s: generous, so any miss means a stall
        supervisor: SupervisorPolicy {
            check_every: 8,
            ..SupervisorPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let queue_capacity = cfg.queue_capacity;
    let service = MappingService::new(machine, alloc, cfg);
    let resident = Arc::new(task_graph(128, 1));
    let initial_wh = service.install_job(Arc::clone(&resident));
    assert!(initial_wh > 0.0);

    let mut tickets = Vec::new();
    let mut shed = 0usize;
    let mut repair_errors = Vec::new();
    for ev in &load {
        match ev {
            LoadEvent::Request { tasks, seed, .. } => {
                let job = MapJob::new(Arc::new(task_graph(*tasks, *seed)));
                match service.submit_map(job) {
                    Submit::Accepted(t) => tickets.push(t),
                    Submit::Rejected { queue_depth } => {
                        assert!(
                            queue_depth <= queue_capacity,
                            "depth {queue_depth} over bound"
                        );
                        shed += 1;
                    }
                }
            }
            LoadEvent::Churn { event, .. } => {
                let report = service.apply_churn(std::slice::from_ref(event));
                if let Some(err) = report.error {
                    repair_errors.push(err);
                }
            }
        }
    }

    // Every accepted request is answered — within deadline, with a
    // feasible mapping, naming the rung that served it.
    let accepted = tickets.len();
    for ticket in tickets {
        let reply = ticket.wait().expect("accepted request must be answered");
        assert!(
            reply.met_deadline(),
            "deadline miss: total {} ns > {} ns (rung {:?})",
            reply.total_ns,
            reply.deadline_ns,
            reply.rung
        );
        assert!(!reply.mapping.is_empty());
        assert!(reply.mapping.iter().all(|&n| n != u32::MAX));
    }

    // Transient infeasibility is allowed; exhaustion is not (the churn
    // generator caps removals so capacity always suffices).
    assert!(
        repair_errors.is_empty(),
        "unexpected terminal repair errors: {repair_errors:?}"
    );
    if service
        .live_mapping()
        .is_some_and(|m| m.contains(&u32::MAX))
    {
        service.retry_now();
    }

    // Drift bound: after a forced supervisor pass, live WH is within
    // 15 % of mapping the final machine state from scratch.
    let report = service.polish_now();
    assert!(report.drift_checked, "supervisor must be able to check");
    let live = service.live_wh().expect("resident job fully placed");
    let scratch_wh = service.with_state(|m, a| from_scratch_wh(&resident, m, a));
    assert!(
        live <= scratch_wh * 1.15 + 1e-9,
        "drift over bound: live {live:.1} vs from-scratch {scratch_wh:.1}"
    );

    let drift = service.drift().expect("resident job tracks drift");
    assert!(drift.repairs > 0, "churn stream must exercise repairs");

    let stats = service.shutdown();
    assert_eq!(stats.panics, 0, "soak must be panic-free");
    assert_eq!(stats.deadline_misses, 0, "shedding must prevent misses");
    assert!(stats.max_queue_depth <= queue_capacity);
    assert_eq!(stats.accepted, accepted as u64);
    assert_eq!(stats.rejected, shed as u64);
    assert_eq!(stats.accepted + stats.rejected, (accepted + shed) as u64);
    assert!(stats.repairs > 0);
    assert!(stats.drift_checks > 0);
    // The ladder served something (whatever mix of rungs the box's
    // speed dictated).
    assert_eq!(
        stats.served_by_rung.iter().sum::<u64>(),
        stats.accepted,
        "every accepted request is attributed to a rung"
    );
}

#[test]
fn poisoned_request_is_isolated_and_service_keeps_serving() {
    let (machine, alloc) = setup();
    let cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let service = MappingService::new(machine, alloc, cfg);

    let poisoned = service
        .submit_poison()
        .accepted()
        .expect("poison must be admitted");
    assert!(matches!(poisoned.wait(), Err(ServiceError::Panicked)));

    // The same worker keeps serving after catching the panic.
    let job = MapJob::new(Arc::new(task_graph(64, 3)));
    let reply = service
        .submit_map(job)
        .accepted()
        .expect("normal request admitted")
        .wait()
        .expect("normal request served after the poison");
    assert_eq!(reply.mapping.len(), 64);

    let stats = service.shutdown();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn backpressure_rejects_with_observed_depth_when_queue_fills() {
    let (machine, alloc) = setup();
    // No consumers: the queue fills to capacity, then sheds.
    let cfg = ServiceConfig {
        workers: 0,
        queue_capacity: 4,
        ..ServiceConfig::default()
    };
    let mut service = MappingService::new(machine, alloc, cfg);
    let tasks = Arc::new(task_graph(16, 1));

    let mut admitted = Vec::new();
    for _ in 0..4 {
        match service.submit_map(MapJob::new(Arc::clone(&tasks))) {
            Submit::Accepted(t) => admitted.push(t),
            Submit::Rejected { queue_depth } => {
                panic!("rejected below capacity at depth {queue_depth}")
            }
        }
    }
    assert_eq!(service.queue_depth(), 4);
    match service.submit_map(MapJob::new(Arc::clone(&tasks))) {
        Submit::Accepted(_) => panic!("admitted past the bound"),
        Submit::Rejected { queue_depth } => assert_eq!(queue_depth, 4),
    }

    let stats = service.stats();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.rejected, 1);
    assert!((stats.shed_rate() - 0.2).abs() < 1e-12);
    assert_eq!(stats.max_queue_depth, 4);

    // Once intake closes, rejections must still carry the depth
    // observed at rejection time — the 4 queued envelopes have not
    // drained — not a hardwired zero.
    service.close_intake();
    match service.submit_map(MapJob::new(Arc::clone(&tasks))) {
        Submit::Accepted(_) => panic!("admitted past shutdown"),
        Submit::Rejected { queue_depth } => assert_eq!(queue_depth, 4),
    }
    assert_eq!(service.stats().rejected, 2);
}

#[test]
fn infeasible_repair_retries_exhausts_typed_then_converges_on_capacity() {
    let machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 3));
    let (clock, _handle) = ServiceClock::manual();
    let cfg = ServiceConfig {
        workers: 0, // retries driven explicitly, deterministic
        ..ServiceConfig::default()
    };
    let max_attempts = cfg.retry.max_attempts;
    let service = MappingService::with_clock(machine, alloc, cfg, clock);
    // 14 unit tasks on 8 nodes × 2 procs = 16 slots: nearly full.
    service.install_job(Arc::new(task_graph(14, 5)));

    // Remove 4 nodes (8 slots): 14 tasks cannot fit 8 slots.
    let doomed: Vec<u32> = service.with_state(|_, a| a.nodes()[..4].to_vec());
    let report = service.apply_churn(&[ChurnEvent::NodesRemoved {
        nodes: doomed.clone(),
    }]);
    assert!(!report.fully_placed);
    assert!(report.unplaced > 0);
    assert!(report.error.is_none(), "first attempt is not exhaustion");

    // Burn the retry budget: still infeasible, so the typed error
    // surfaces — never a panic, and the service stays up.
    let mut last = None;
    for _ in 0..max_attempts {
        last = service.retry_now();
    }
    let last = last.expect("pending repair must be retryable");
    assert!(matches!(
        last.error,
        Some(ServiceError::RepairExhausted { unplaced, .. }) if unplaced > 0
    ));
    let stats = service.stats();
    assert!(stats.retry_exhausted >= 1);
    assert!(stats.retries >= u64::from(max_attempts));

    // Capacity returns: the event-driven attempt converges even after
    // exhaustion.
    let report = service.apply_churn(&[ChurnEvent::NodesAdded { nodes: doomed }]);
    assert!(report.fully_placed, "NodesAdded must converge the repair");
    assert_eq!(report.unplaced, 0);
    let mapping = service.live_mapping().expect("job installed");
    assert!(mapping.iter().all(|&n| n != u32::MAX));
    assert_eq!(service.stats().panics, 0);
}

#[test]
fn ladder_degrades_on_tight_deadlines_and_reports_the_rung() {
    let (machine, alloc) = setup();
    let cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let service = MappingService::new(machine, alloc, cfg);
    let tasks = Arc::new(task_graph(64, 9));

    // A 1 µs budget affords nothing but projection.
    let reply = service
        .submit_map(MapJob::new(Arc::clone(&tasks)).with_deadline_ns(1_000))
        .accepted()
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(reply.rung, LadderRung::Projection);
    assert_eq!(reply.served_with, MapperKind::Def);

    // A generous budget keeps the requested top rung.
    let reply = service
        .submit_map(MapJob::new(Arc::clone(&tasks)).with_deadline_ns(u64::MAX))
        .accepted()
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(reply.rung, LadderRung::Full);
    assert_eq!(reply.served_with, MapperKind::GreedyMc);

    let stats = service.shutdown();
    assert_eq!(stats.served_by_rung[LadderRung::Projection.index()], 1);
    assert_eq!(stats.served_by_rung[LadderRung::Full.index()], 1);
}

#[test]
fn manual_clock_runs_are_deterministic() {
    let run = || {
        let (machine, alloc) = setup();
        let load = load_sequence(&machine, &alloc, &LoadSpec::new(60, 13));
        let (clock, _handle) = ServiceClock::manual();
        let cfg = ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let service = MappingService::with_clock(machine, alloc, cfg, clock);
        service.install_job(Arc::new(task_graph(96, 2)));
        let mut replies = Vec::new();
        for ev in &load {
            match ev {
                LoadEvent::Request { tasks, seed, .. } => {
                    // Sequential submit+wait: one worker, ordered EWMA
                    // updates, no scheduling nondeterminism.
                    let reply = service
                        .submit_map(MapJob::new(Arc::new(task_graph(*tasks, *seed))))
                        .accepted()
                        .expect("no contention, must admit")
                        .wait()
                        .expect("served");
                    replies.push((reply.mapping, reply.served_with));
                }
                LoadEvent::Churn { event, .. } => {
                    service.apply_churn(std::slice::from_ref(event));
                }
            }
        }
        let live = service.live_mapping().expect("job installed");
        (replies, live)
    };
    let (replies_a, live_a) = run();
    let (replies_b, live_b) = run();
    assert_eq!(replies_a, replies_b, "served mappings must be seed-stable");
    assert_eq!(live_a, live_b, "live mapping must be seed-stable");
}

#[test]
fn poisoned_state_lock_is_absorbed_and_service_keeps_serving() {
    let (machine, alloc) = setup();
    let cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let service = MappingService::new(machine, alloc, cfg);
    let wh_before = {
        service.install_job(Arc::new(task_graph(96, 4)));
        service.live_wh().expect("job installed")
    };

    // Panic a writer while it holds the state RwLock: the lock is now
    // poisoned. Every lock site absorbs poison via `into_inner`, so
    // the service must keep serving — reads, churn and mapped
    // requests alike — instead of cascading the panic.
    service.poison_state_lock();

    assert_eq!(
        service.live_wh().map(f64::to_bits),
        Some(wh_before.to_bits()),
        "reads must survive a poisoned lock"
    );
    let victim = service.with_state(|_, a| a.nodes()[0]);
    let report = service.apply_churn(&[ChurnEvent::NodeFailed { node: victim }]);
    assert_eq!(
        report.applied_events, 1,
        "churn must still mutate state after poisoning"
    );
    let reply = service
        .submit_map(MapJob::new(Arc::new(task_graph(48, 9))))
        .accepted()
        .expect("queue empty, must admit")
        .wait()
        .expect("worker must still serve after poisoning");
    assert!(!reply.mapping.is_empty());
}
