//! Differential harness for the batch-gain-kernel greedy rewrite
//! (DESIGN.md §17).
//!
//! The gain-kernel PR rewrote Algorithm 1's placement loop around the
//! shared batch kernel of `umpa_core::gain`: a compact slot×slot
//! distance panel built once per run, candidate batches scored against
//! hoisted rows, a level-0 fast path that skips the router BFS
//! entirely, capped BFS expansion past the feasible level, and an
//! early-stopping far-node search — promising **bit-identical
//! mappings and WH** (same seed choices, same BFS candidate order,
//! same tie-breaks, same float accumulation order). This test pins
//! that promise against the pre-rewrite engine, preserved verbatim as
//! `umpa::core::greedy_reference::greedy_map_into_reference`, across:
//!
//! * the backend matrix — tori including extent-1 and extent-2
//!   dimensions, a mesh, a fat-tree and a dragonfly;
//! * the distance oracle on and off (the analytic fallback CI keeps
//!   honest by running this test in both feature configs);
//! * a **warm** scratch shared across every case and a **cold** one
//!   per case;
//! * `NBFS` candidate sets beyond the default;
//! * allocations past the panel size cap (the per-lookup fallback arm)
//!   and heterogeneous node capacities (the heavy-first pre-pass).
//!
//! Mappings compare with `==` and WH with `to_bits` — the engines
//! promise identical arithmetic, not merely close results.

use umpa::core::greedy::{greedy_map_into, GreedyConfig, GreedyScratch};
use umpa::core::greedy_reference::{greedy_map_into_reference, GreedyReferenceScratch};
use umpa::graph::TaskGraph;
use umpa::topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, Machine, MachineConfig,
};

/// The backend × preset matrix: label + machine constructor.
fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("torus 4x4", MachineConfig::small(&[4, 4], 1, 2).build()),
        (
            "torus 3x3x2",
            MachineConfig::small(&[3, 3, 2], 2, 2).build(),
        ),
        (
            "torus extent-1",
            MachineConfig::small(&[1, 6], 1, 2).build(),
        ),
        (
            "torus extent-2",
            MachineConfig::small(&[2, 4], 1, 2).build(),
        ),
        ("mesh 4x3", MachineConfig::small_mesh(&[4, 3], 1, 2).build()),
        ("fat-tree k=4", FatTreeConfig::small(4, 2, 2).build()),
        ("dragonfly 3x3", DragonflyConfig::small(3, 3, 2).build()),
    ]
}

/// A communication-heavy fixture: ring + chords with skewed weights, so
/// placement has real distance structure to chase on every backend.
fn task_graph(n: u32, seed: u64) -> TaskGraph {
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 2) % n, w),
            ((i + 3) % n, i, 0.5 * w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

/// Runs both engines plus a cold-scratch rewrite run and asserts the
/// three mappings and WH returns are exactly equal.
fn assert_bit_identical(
    label: &str,
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
    warm: &mut GreedyScratch,
) {
    let mut out_ref = Vec::new();
    let wh_ref = greedy_map_into_reference(
        tg,
        machine,
        alloc,
        cfg,
        &mut GreedyReferenceScratch::new(),
        &mut out_ref,
    );
    let mut out_warm = Vec::new();
    let wh_warm = greedy_map_into(tg, machine, alloc, cfg, warm, &mut out_warm);
    let mut out_cold = Vec::new();
    let wh_cold = greedy_map_into(
        tg,
        machine,
        alloc,
        cfg,
        &mut GreedyScratch::new(),
        &mut out_cold,
    );
    assert_eq!(out_warm, out_ref, "{label}: warm rewrite mapping diverged");
    assert_eq!(
        wh_warm.to_bits(),
        wh_ref.to_bits(),
        "{label}: warm rewrite WH diverged ({wh_warm} vs {wh_ref})"
    );
    assert_eq!(out_cold, out_ref, "{label}: cold rewrite mapping diverged");
    assert_eq!(
        wh_cold.to_bits(),
        wh_ref.to_bits(),
        "{label}: cold rewrite WH diverged ({wh_cold} vs {wh_ref})"
    );
}

#[test]
fn rewrite_matches_reference_bit_for_bit_across_the_matrix() {
    let mut warm = GreedyScratch::new();
    let cfgs = [
        GreedyConfig::default(),
        GreedyConfig {
            nbfs_candidates: vec![0, 1, 2],
            heavy_first_fraction: 0.5,
        },
    ];
    for (label, machine) in machines() {
        for oracle_on in [true, false] {
            let mut m = machine.clone();
            if !oracle_on {
                m.set_oracle_threshold(0);
            }
            let nodes = (machine.num_nodes() / 2).max(2);
            for seed in 0..3u64 {
                let alloc = Allocation::generate(&m, &AllocSpec::sparse(nodes, seed));
                let tasks = alloc.num_nodes() * machine.procs_per_node() as usize;
                let tg = task_graph(tasks as u32, seed);
                for cfg in &cfgs {
                    let case = format!(
                        "{label} seed {seed} oracle {oracle_on} nbfs {:?}",
                        cfg.nbfs_candidates
                    );
                    assert_bit_identical(&case, &tg, &m, &alloc, cfg, &mut warm);
                }
            }
        }
    }
}

#[test]
fn panel_overflow_falls_back_and_still_matches_reference() {
    // Allocations larger than the compact panel cap (the multilevel
    // coarsest-level shape) run the per-lookup kernel arm; it must be
    // just as bit-identical.
    let mut warm = GreedyScratch::new();
    let cfg = GreedyConfig::default();
    for oracle_on in [true, false] {
        let mut m = MachineConfig::small(&[16, 16], 1, 2).build();
        if !oracle_on {
            m.set_oracle_threshold(0);
        }
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(140, 5));
        let tg = task_graph((alloc.num_nodes() * 2) as u32, 5);
        let case = format!("fallback 16x16 oracle {oracle_on}");
        assert_bit_identical(&case, &tg, &m, &alloc, &cfg, &mut warm);
    }
}

#[test]
fn heavy_first_pre_pass_matches_reference() {
    // Heterogeneous node capacities drive the heavy-first pre-pass
    // (sorted placement before the seed), which exercises the kernel
    // before any connectivity structure exists.
    let mut warm = GreedyScratch::new();
    let m = MachineConfig::small(&[4, 4], 1, 4).build();
    let mut alloc = Allocation::generate(&m, &AllocSpec::sparse(6, 2));
    alloc.set_procs(vec![4, 2, 2, 4, 1, 3]);
    let weights = vec![4.0, 1.0, 2.0, 3.0, 1.0, 1.0, 2.0, 1.0];
    let tg = TaskGraph::from_messages(
        8,
        (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 3) % 8, 0.5)]),
        Some(weights),
    );
    for cfg in [
        GreedyConfig::default(),
        GreedyConfig {
            nbfs_candidates: vec![0, 1],
            heavy_first_fraction: 0.25,
        },
    ] {
        let case = format!("heterogeneous heavy_first {}", cfg.heavy_first_fraction);
        assert_bit_identical(&case, &tg, &m, &alloc, &cfg, &mut warm);
    }
}
