//! Cross-crate integration tests: matrix → partition → task graph →
//! mapping → metrics → simulation, end to end.

use umpa::matgen::dataset::{self, Scale};
use umpa::matgen::gen::{stencil2d, Stencil2D};
use umpa::matgen::spmv::{partition_loads, spmv_task_graph};
use umpa::netsim::prelude::*;
use umpa::prelude::*;

fn small_setup() -> (Machine, Allocation, TaskGraph) {
    let machine = MachineConfig::small(&[4, 4, 4], 2, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(16, 3));
    let a = stencil2d(16, 16, Stencil2D::FivePoint);
    let part = PartitionerKind::Patoh.partition_matrix(&a, 64, 1);
    let tg = spmv_task_graph(&a, &part, 64);
    (machine, alloc, tg)
}

#[test]
fn every_mapper_end_to_end() {
    let (machine, alloc, tg) = small_setup();
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        umpa::core::mapping::validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let m = evaluate(&tg, &machine, &out.fine_mapping);
        assert!(m.th >= 0.0 && m.wh >= 0.0 && m.mc >= 0.0);
        // The identity TH = Σ_e Congestion(e) (Section II).
        let sum: f64 = m.msg_congestion.iter().sum();
        assert!((m.th - sum).abs() < 1e-6, "{}", kind.name());
    }
}

#[test]
fn refined_mappers_improve_their_target_metrics() {
    let (machine, alloc, tg) = small_setup();
    let cfg = PipelineConfig::default();
    let ug = map_tasks(&tg, &machine, &alloc, MapperKind::Greedy, &cfg);
    let uwh = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    let umc = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyMc, &cfg);
    let ummc = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyMmc, &cfg);
    let m_ug = evaluate(&tg, &machine, &ug.fine_mapping);
    let m_uwh = evaluate(&tg, &machine, &uwh.fine_mapping);
    let m_umc = evaluate(&tg, &machine, &umc.fine_mapping);
    let m_ummc = evaluate(&tg, &machine, &ummc.fine_mapping);
    assert!(m_uwh.wh <= m_ug.wh + 1e-9, "UWH must not worsen UG's WH");
    assert!(m_umc.mc <= m_ug.mc + 1e-9, "UMC must not worsen UG's MC");
    assert!(
        m_ummc.mmc <= m_ug.mmc + 1e-9,
        "UMMC must not worsen UG's MMC"
    );
}

#[test]
fn simulation_prefers_lower_wh_mappings_on_volume_bound_patterns() {
    let (machine, alloc, tg) = small_setup();
    let cfg = PipelineConfig::default();
    let def = map_tasks(&tg, &machine, &alloc, MapperKind::Def, &cfg);
    let uwh = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    let m_def = evaluate(&tg, &machine, &def.fine_mapping);
    let m_uwh = evaluate(&tg, &machine, &uwh.fine_mapping);
    // Only a meaningful check when UWH actually improved the metrics.
    if m_uwh.wh < 0.9 * m_def.wh && m_uwh.mc < 0.9 * m_def.mc {
        let app = AppConfig {
            des: DesConfig {
                scale: 4096.0,
                ..DesConfig::default()
            },
            repetitions: 1,
            ..AppConfig::default()
        };
        let t_def = comm_only_time(&machine, &tg, &def.fine_mapping, &app);
        let t_uwh = comm_only_time(&machine, &tg, &uwh.fine_mapping, &app);
        assert!(
            t_uwh.mean_us <= t_def.mean_us * 1.05,
            "UWH sim time {} should not exceed DEF {} by >5%",
            t_uwh.mean_us,
            t_def.mean_us
        );
    }
}

#[test]
fn dataset_to_mapping_pipeline_runs_for_every_class() {
    let machine = MachineConfig::small(&[4, 4, 4], 2, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 5));
    let cfg = PipelineConfig::default();
    for entry in dataset::registry().iter().step_by(3) {
        let a = entry.build(Scale::Tiny);
        let part = PartitionerKind::Metis.partition_matrix(&a, 32, 2);
        let tg = spmv_task_graph(&a, &part, 32);
        let out = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
        umpa::core::mapping::validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
    }
}

#[test]
fn spmv_simulation_is_deterministic_and_scales() {
    let (machine, alloc, tg) = small_setup();
    let cfg = PipelineConfig::default();
    let out = map_tasks(&tg, &machine, &alloc, MapperKind::Greedy, &cfg);
    let loads = vec![100.0; tg.num_tasks()];
    let app = AppConfig::default();
    let a = spmv_time(&machine, &tg, &out.fine_mapping, &loads, 50, &app);
    let b = spmv_time(&machine, &tg, &out.fine_mapping, &loads, 50, &app);
    assert_eq!(a.mean_us, b.mean_us);
    let c = spmv_time(&machine, &tg, &out.fine_mapping, &loads, 100, &app);
    assert!((c.mean_us / a.mean_us - 2.0).abs() < 1e-9);
}

#[test]
fn partition_loads_conserve_total_work() {
    let a = stencil2d(20, 20, Stencil2D::FivePoint);
    for kind in PartitionerKind::all() {
        let part = kind.partition_matrix(&a, 16, 9);
        let loads = partition_loads(&a, &part, 16);
        let total: f64 = loads.iter().sum();
        assert!(
            (total - (a.nrows() + a.nnz()) as f64).abs() < 1e-9,
            "{}",
            kind.name()
        );
    }
}
