//! Property-based tests of the paper's structural invariants.
//!
//! `proptest` is unavailable offline, so each property is exercised over
//! a deterministic family of randomized cases drawn from the workspace's
//! seeded ChaCha8 generator — same invariants, reproducible inputs.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use umpa::core::greedy::{greedy_map, weighted_hops, GreedyConfig};
use umpa::core::mapping::validate_mapping;
use umpa::core::wh_refine::{wh_refine, WhRefineConfig};
use umpa::prelude::*;
use umpa::topology::routing;

/// Random torus dims (2–3 dims, extents 2–6).
fn torus_dims(rng: &mut ChaCha8Rng) -> Vec<u32> {
    let ndims = rng.gen_range(2..=3usize);
    (0..ndims).map(|_| rng.gen_range(2..=6u32)).collect()
}

/// A random directed message list over `n` tasks (1..40 messages).
fn messages(rng: &mut ChaCha8Rng, n: u32) -> Vec<(u32, u32, f64)> {
    let m = rng.gen_range(1..40usize);
    (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                f64::from(rng.gen_range(1..100u32)),
            )
        })
        .collect()
}

#[test]
fn route_length_equals_o1_distance() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE);
    for _ in 0..64 {
        let dims = torus_dims(&mut rng);
        let t = Torus::new(&dims);
        let n = t.num_routers() as u32;
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let route = routing::route_vec(&t, a, b);
        assert_eq!(route.len() as u32, t.distance(a, b));
        // The route is a contiguous walk ending at b.
        let mut cur = a;
        for h in &route {
            assert_eq!(h.from, cur);
            cur = t.neighbor(cur, h.dim as usize, h.positive);
        }
        assert_eq!(cur, b);
    }
}

/// Machines of every backend family for a sweep iteration: wraparound
/// torus, mesh, fat-tree, dragonfly — each in the given link mode.
fn backend_machines(rng: &mut ChaCha8Rng, mode: LinkMode) -> Vec<Machine> {
    let dims = torus_dims(rng);
    let mk_torus = |wrap: bool, mode: LinkMode| {
        let mut cfg = if wrap {
            MachineConfig::small(&dims, 1, 2)
        } else {
            MachineConfig::small_mesh(&dims, 1, 2)
        };
        cfg.link_mode = mode;
        cfg.build()
    };
    let k = 2 * rng.gen_range(1..=3u32); // 2, 4 or 6
    let mut ft = FatTreeConfig::small(k, 1, 2);
    ft.link_mode = mode;
    let g = rng.gen_range(2..=5u32);
    let a = rng.gen_range(1..=4u32);
    let mut df = DragonflyConfig::small(g, a, 1);
    df.procs_per_node = 2;
    df.link_mode = mode;
    vec![
        mk_torus(true, mode),
        mk_torus(false, mode),
        ft.build(),
        df.build(),
    ]
}

#[test]
fn route_invariants_hold_on_every_backend_and_link_mode() {
    // For every backend x LinkMode x wraparound: route length equals
    // the O(1) distance, the router path is contiguous (every
    // consecutive pair adjacent in the CSR router graph), and every
    // emitted channel id lies in the exact id space.
    let mut rng = ChaCha8Rng::seed_from_u64(0x70B0);
    for case in 0..24 {
        for mode in [LinkMode::Directed, LinkMode::Undirected] {
            for m in backend_machines(&mut rng, mode) {
                let topo = m.topology();
                let nt = topo.num_terminal_routers() as u32;
                let mut links = Vec::new();
                let mut routers = Vec::new();
                for _ in 0..32 {
                    let a = rng.gen_range(0..nt);
                    let b = rng.gen_range(0..nt);
                    links.clear();
                    routers.clear();
                    topo.route_links(a, b, mode, &mut links);
                    topo.route_routers(a, b, &mut routers);
                    let ctx = || format!("case {case} {} {a}->{b}", topo.summary());
                    assert_eq!(links.len() as u32, topo.distance(a, b), "{}", ctx());
                    assert_eq!(routers.len(), links.len() + 1, "{}", ctx());
                    assert_eq!(routers[0], a, "{}", ctx());
                    assert_eq!(*routers.last().unwrap(), b, "{}", ctx());
                    let g = m.router_graph();
                    for w in routers.windows(2) {
                        assert!(
                            g.neighbors(w[0]).contains(&w[1]),
                            "{}: hop {w:?} not adjacent",
                            ctx()
                        );
                    }
                    let nl = m.num_links() as u32;
                    assert!(links.iter().all(|&l| l < nl), "{}", ctx());
                }
            }
        }
    }
}

#[test]
fn metric_identities_hold_on_every_backend_and_link_mode() {
    // TH = Σ_e Congestion(e) and WH = Σ_e VC(e)·bw(e) on random
    // mappings, for every backend x LinkMode.
    let mut rng = ChaCha8Rng::seed_from_u64(0x1DE47);
    for case in 0..16 {
        for mode in [LinkMode::Directed, LinkMode::Undirected] {
            for m in backend_machines(&mut rng, mode) {
                let n_tasks = 12u32;
                let msgs = messages(&mut rng, n_tasks);
                let tg = TaskGraph::from_messages(n_tasks as usize, msgs, None);
                let nodes = (n_tasks as usize).div_ceil(2).min(m.num_nodes());
                let alloc = Allocation::generate(&m, &AllocSpec::contiguous(nodes));
                // Random feasible mapping: 2 procs per node.
                let mut slots: Vec<u32> = (0..n_tasks).map(|t| t % nodes as u32).collect();
                slots.shuffle(&mut rng);
                let mapping: Vec<u32> = slots.iter().map(|&s| alloc.node(s as usize)).collect();
                let r = evaluate(&tg, &m, &mapping);
                let ctx = || format!("case {case} {} {mode:?}", m.topology().summary());
                let th_sum: f64 = r.msg_congestion.iter().sum();
                assert!((r.th - th_sum).abs() < 1e-9, "{}: TH identity", ctx());
                // WH = Σ_e VC(e)·bw(e), with VC recomputed from MC's
                // own definition (max over per-link VC) so the
                // bandwidth lookup is load-bearing — a wrong channel→
                // physical-link mapping would break the MC cross-check
                // below, not cancel out.
                let wh_sum: f64 = r.vol_traffic.iter().sum();
                assert!(
                    (r.wh - wh_sum).abs() < 1e-9 * (1.0 + r.wh),
                    "{}: WH identity",
                    ctx()
                );
                let mc_hand = (0..m.num_links() as u32)
                    .map(|l| r.vol_traffic[l as usize] / m.link_bandwidth(l))
                    .fold(0.0f64, f64::max);
                assert!(
                    (r.mc - mc_hand).abs() < 1e-9 * (1.0 + r.mc),
                    "{}: MC from per-link VC",
                    ctx()
                );
                // Directed channels inherit their physical link's
                // bandwidth: both directions must agree.
                if mode == LinkMode::Directed {
                    for l in 0..(m.num_links() / 2) as u32 {
                        assert_eq!(
                            m.link_bandwidth(2 * l).to_bits(),
                            m.link_bandwidth(2 * l + 1).to_bits(),
                            "{}: channel pair {l}",
                            ctx()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn torus_distance_is_a_metric() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B);
    for _ in 0..64 {
        let dims = torus_dims(&mut rng);
        let t = Torus::new(&dims);
        let n = t.num_routers() as u32;
        let (x, y, z) = (
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        );
        assert_eq!(t.distance(x, y), t.distance(y, x));
        assert_eq!(t.distance(x, x), 0);
        assert!(t.distance(x, z) <= t.distance(x, y) + t.distance(y, z));
    }
}

#[test]
fn th_equals_sum_of_link_congestion() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for _ in 0..64 {
        let msgs = messages(&mut rng, 12);
        let machine = MachineConfig::small(&[3, 3, 3], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(6));
        let tg = TaskGraph::from_messages(12, msgs, None);
        let mapping: Vec<u32> = (0..12).map(|t| alloc.node(t % 6)).collect();
        let m = evaluate(&tg, &machine, &mapping);
        let sum: f64 = m.msg_congestion.iter().sum();
        assert!((m.th - sum).abs() < 1e-9);
        // And WH = Σ_e traffic(e) with unit bandwidths.
        let vsum: f64 = m.vol_traffic.iter().sum();
        assert!((m.wh - vsum).abs() < 1e-9);
    }
}

#[test]
fn greedy_mapping_is_always_feasible() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD00D);
    for case in 0..64 {
        let msgs = messages(&mut rng, 10);
        let seed = rng.gen_range(0..20u64);
        let machine = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(5, seed));
        let tg = TaskGraph::from_messages(10, msgs, None);
        let mapping = greedy_map(&tg, &machine, &alloc, &GreedyConfig::default());
        assert!(
            validate_mapping(&tg, &alloc, &mapping).is_ok(),
            "case {case}"
        );
    }
}

#[test]
fn wh_refinement_is_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE5);
    for case in 0..64 {
        let msgs = messages(&mut rng, 8);
        let seed = rng.gen_range(0..10u64);
        let machine = MachineConfig::small(&[4, 4], 1, 1).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, seed));
        let tg = TaskGraph::from_messages(8, msgs, None);
        let mut mapping: Vec<u32> = (0..8).map(|t| alloc.node(t)).collect();
        let before = weighted_hops(&tg, &machine, &mapping);
        let after = wh_refine(
            &tg,
            &machine,
            &alloc,
            &mut mapping,
            &WhRefineConfig::default(),
        );
        assert!(after <= before + 1e-9, "case {case}");
        assert!((weighted_hops(&tg, &machine, &mapping) - after).abs() < 1e-6);
        assert!(validate_mapping(&tg, &alloc, &mapping).is_ok());
    }
}

#[test]
fn congestion_refinement_never_worsens_mc() {
    use umpa::core::cong_refine::{congestion_refine, CongRefineConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(0xF00);
    for case in 0..64 {
        let msgs = messages(&mut rng, 8);
        let seed = rng.gen_range(0..10u64);
        let machine = MachineConfig::small(&[4, 4], 1, 1).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, seed));
        let tg = TaskGraph::from_messages(8, msgs, None);
        let mut mapping: Vec<u32> = (0..8).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &machine, &mapping).mc;
        let (mc, _) = congestion_refine(
            &tg,
            &machine,
            &alloc,
            &mut mapping,
            &CongRefineConfig::volume(),
        );
        let after = evaluate(&tg, &machine, &mapping).mc;
        assert!(after <= before + 1e-9, "case {case}");
        assert!(
            (after - mc).abs() < 1e-9,
            "case {case}: internal state drifted: {after} vs {mc}"
        );
    }
}

#[test]
fn allocations_are_valid_subsets() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFACE);
    for _ in 0..64 {
        let seed = rng.gen_range(0..50u64);
        let n = rng.gen_range(2..30usize);
        let machine = MachineConfig::small(&[4, 4, 4], 2, 4).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(n, seed));
        assert_eq!(alloc.num_nodes(), n);
        let mut seen = std::collections::HashSet::new();
        for &node in alloc.nodes() {
            assert!((node as usize) < machine.num_nodes());
            assert!(seen.insert(node));
        }
    }
}

#[test]
fn partitioner_respects_part_count() {
    use umpa::matgen::gen::{stencil2d, Stencil2D};
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    for _ in 0..12 {
        let nx = rng.gen_range(6..14usize);
        let k = rng.gen_range(2..9usize);
        let a = stencil2d(nx, nx, Stencil2D::FivePoint);
        let part = PartitionerKind::Patoh.partition_matrix(&a, k, 5);
        assert_eq!(part.len(), nx * nx);
        assert!(part.iter().all(|&p| (p as usize) < k));
        // No part is empty (matrices here are connected and large enough).
        let mut counts = vec![0usize; k];
        for &p in &part {
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
    }
}

#[test]
fn quotient_graph_conserves_cross_volume() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD);
    for _ in 0..64 {
        let msgs = messages(&mut rng, 12);
        let tg = TaskGraph::from_messages(12, msgs, None);
        // Arbitrary grouping into 4 groups.
        let groups: Vec<u32> = (0..12u32).map(|t| t % 4).collect();
        let q = tg.group_quotient(&groups, 4, false);
        let cross: f64 = tg
            .messages()
            .filter(|(s, t, _)| groups[*s as usize] != groups[*t as usize])
            .map(|(_, _, v)| v)
            .sum();
        assert!((q.total_volume() - cross).abs() < 1e-9);
    }
}
