//! Property-based tests of the paper's structural invariants.

use proptest::prelude::*;
use umpa::core::greedy::{greedy_map, weighted_hops, GreedyConfig};
use umpa::core::mapping::validate_mapping;
use umpa::core::wh_refine::{wh_refine, WhRefineConfig};
use umpa::prelude::*;
use umpa::topology::routing;

/// Strategy: random torus dims (2–3 dims, extents 2–6).
fn torus_dims() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(2u32..=6, 2..=3)
}

/// Strategy: a random directed message list over `n` tasks.
fn messages(n: u32) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, 1u32..100).prop_map(|(s, t, v)| (s, t, f64::from(v))),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn route_length_equals_o1_distance(dims in torus_dims(), a in 0u32..100, b in 0u32..100) {
        let t = Torus::new(&dims);
        let n = t.num_routers() as u32;
        let (a, b) = (a % n, b % n);
        let route = routing::route_vec(&t, a, b);
        prop_assert_eq!(route.len() as u32, t.distance(a, b));
        // The route is a contiguous walk ending at b.
        let mut cur = a;
        for h in &route {
            prop_assert_eq!(h.from, cur);
            cur = t.neighbor(cur, h.dim as usize, h.positive);
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn torus_distance_is_a_metric(dims in torus_dims(), x in 0u32..200, y in 0u32..200, z in 0u32..200) {
        let t = Torus::new(&dims);
        let n = t.num_routers() as u32;
        let (x, y, z) = (x % n, y % n, z % n);
        prop_assert_eq!(t.distance(x, y), t.distance(y, x));
        prop_assert_eq!(t.distance(x, x), 0);
        prop_assert!(t.distance(x, z) <= t.distance(x, y) + t.distance(y, z));
    }

    #[test]
    fn th_equals_sum_of_link_congestion(msgs in messages(12)) {
        let machine = MachineConfig::small(&[3, 3, 3], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(6));
        let tg = TaskGraph::from_messages(12, msgs, None);
        let mapping: Vec<u32> = (0..12).map(|t| alloc.node(t % 6)).collect();
        let m = evaluate(&tg, &machine, &mapping);
        let sum: f64 = m.msg_congestion.iter().sum();
        prop_assert!((m.th - sum).abs() < 1e-9);
        // And WH = Σ_e traffic(e) with unit bandwidths.
        let vsum: f64 = m.vol_traffic.iter().sum();
        prop_assert!((m.wh - vsum).abs() < 1e-9);
    }

    #[test]
    fn greedy_mapping_is_always_feasible(msgs in messages(10), seed in 0u64..20) {
        let machine = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(5, seed));
        let tg = TaskGraph::from_messages(10, msgs, None);
        let mapping = greedy_map(&tg, &machine, &alloc, &GreedyConfig::default());
        prop_assert!(validate_mapping(&tg, &alloc, &mapping).is_ok());
    }

    #[test]
    fn wh_refinement_is_monotone(msgs in messages(8), seed in 0u64..10) {
        let machine = MachineConfig::small(&[4, 4], 1, 1).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, seed));
        let tg = TaskGraph::from_messages(8, msgs, None);
        let mut mapping: Vec<u32> = (0..8).map(|t| alloc.node(t)).collect();
        let before = weighted_hops(&tg, &machine, &mapping);
        let after = wh_refine(&tg, &machine, &alloc, &mut mapping, &WhRefineConfig::default());
        prop_assert!(after <= before + 1e-9);
        prop_assert!((weighted_hops(&tg, &machine, &mapping) - after).abs() < 1e-6);
        prop_assert!(validate_mapping(&tg, &alloc, &mapping).is_ok());
    }

    #[test]
    fn congestion_refinement_never_worsens_mc(msgs in messages(8), seed in 0u64..10) {
        use umpa::core::cong_refine::{congestion_refine, CongRefineConfig};
        let machine = MachineConfig::small(&[4, 4], 1, 1).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, seed));
        let tg = TaskGraph::from_messages(8, msgs, None);
        let mut mapping: Vec<u32> = (0..8).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &machine, &mapping).mc;
        let (mc, _) = congestion_refine(&tg, &machine, &alloc, &mut mapping, &CongRefineConfig::volume());
        let after = evaluate(&tg, &machine, &mapping).mc;
        prop_assert!(after <= before + 1e-9);
        prop_assert!((after - mc).abs() < 1e-9, "internal state drifted: {} vs {}", after, mc);
    }

    #[test]
    fn allocations_are_valid_subsets(seed in 0u64..50, n in 2usize..30) {
        let machine = MachineConfig::small(&[4, 4, 4], 2, 4).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(n, seed));
        prop_assert_eq!(alloc.num_nodes(), n);
        let mut seen = std::collections::HashSet::new();
        for &node in alloc.nodes() {
            prop_assert!((node as usize) < machine.num_nodes());
            prop_assert!(seen.insert(node));
        }
    }

    #[test]
    fn partitioner_respects_part_count(nx in 6usize..14, k in 2usize..9) {
        use umpa::matgen::gen::{stencil2d, Stencil2D};
        let a = stencil2d(nx, nx, Stencil2D::FivePoint);
        let part = PartitionerKind::Patoh.partition_matrix(&a, k, 5);
        prop_assert_eq!(part.len(), nx * nx);
        prop_assert!(part.iter().all(|&p| (p as usize) < k));
        // No part is empty (matrices here are connected and large enough).
        let mut counts = vec![0usize; k];
        for &p in &part {
            counts[p as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn quotient_graph_conserves_cross_volume(msgs in messages(12)) {
        let tg = TaskGraph::from_messages(12, msgs, None);
        // Arbitrary grouping into 4 groups.
        let groups: Vec<u32> = (0..12u32).map(|t| t % 4).collect();
        let q = tg.group_quotient(&groups, 4, false);
        let cross: f64 = tg
            .messages()
            .filter(|(s, t, _)| groups[*s as usize] != groups[*t as usize])
            .map(|(_, _, v)| v)
            .sum();
        prop_assert!((q.total_volume() - cross).abs() < 1e-9);
    }
}
