//! Differential test harness for the multilevel coarsen–map–refine
//! engine: across the topology backend × preset matrix (torus including
//! extent-1 and extent-2 dimensions, mesh, fat-tree, dragonfly),
//! multilevel mappings must be feasible, deterministic, bit-identical
//! across the `parallel` feature and the distance-oracle modes, and —
//! on graphs small enough to run both — within a bounded weighted-hops
//! ratio of the direct pipeline.

use umpa::core::multilevel::{multilevel_map_into, MultilevelConfig};
use umpa::core::pipeline::{
    map_many, map_many_seq, map_multilevel, map_multilevel_with, map_tasks, MapRequest,
    MapStrategy, MapperKind, PipelineConfig,
};
use umpa::core::scratch::MapperScratch;
use umpa::core::{evaluate, validate_mapping};
use umpa::graph::TaskGraph;
use umpa::topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, Machine, MachineConfig,
};

/// The backend × preset matrix: every topology family plus the torus
/// corner geometries (extent-1 and extent-2 dimensions tripped link-id
/// bugs before PR 2 — keep them in every sweep).
fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("torus", MachineConfig::small(&[4, 4], 1, 4).build()),
        ("torus-extent1", MachineConfig::small(&[1, 8], 2, 4).build()),
        ("torus-extent2", MachineConfig::small(&[2, 4], 2, 4).build()),
        ("mesh", MachineConfig::small_mesh(&[3, 4], 1, 4).build()),
        ("fattree", FatTreeConfig::small(4, 2, 4).build()),
        (
            "dragonfly",
            DragonflyConfig {
                procs_per_node: 4,
                ..DragonflyConfig::small(3, 3, 2)
            }
            .build(),
        ),
    ]
}

/// Greedy-family mappers (the multilevel engine's domain).
const KINDS: [MapperKind; 4] = [
    MapperKind::Greedy,
    MapperKind::GreedyWh,
    MapperKind::GreedyMc,
    MapperKind::GreedyMmc,
];

/// A ring-with-chords graph `size × |Va|` larger than the allocation,
/// light enough (fill ≈ 0.5) for the capacity-aware matching to
/// coarsen deeply.
fn big_graph(tasks: u32, fill_weight: f64) -> TaskGraph {
    TaskGraph::from_messages(
        tasks as usize,
        (0..tasks).flat_map(|i| {
            [
                (i, (i + 1) % tasks, 4.0),
                (i, (i + 7) % tasks, 1.0),
                (i, (i + 13) % tasks, 0.5),
            ]
        }),
        Some(vec![fill_weight; tasks as usize]),
    )
}

/// Pipeline config with multilevel coarsening enabled at test sizes.
fn ml_cfg() -> PipelineConfig {
    PipelineConfig {
        multilevel: MultilevelConfig {
            coarsen_min: 8,
            coarsen_factor: 1.5,
            ..MultilevelConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn multilevel_is_feasible_and_deterministic_across_the_matrix() {
    let cfg = ml_cfg();
    let mut warm = MapperScratch::new();
    for (name, m) in machines() {
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 3));
        // 16 × |Va| tasks at fill 0.5: 128 tasks of weight 0.125 on
        // 8 × 4 procs.
        let tg = big_graph(128, 0.125);
        for kind in KINDS {
            let a = map_multilevel(&tg, &m, &alloc, kind, &cfg);
            validate_mapping(&tg, &alloc, &a.fine_mapping)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.name()));
            assert_eq!(a.group_of.len(), tg.num_tasks(), "{name}/{}", kind.name());
            // Deterministic for a fixed seed.
            let b = map_multilevel(&tg, &m, &alloc, kind, &cfg);
            assert_eq!(
                a.fine_mapping,
                b.fine_mapping,
                "{name}/{}: nondeterministic",
                kind.name()
            );
            // Warm-scratch runs are bit-identical to fresh ones.
            let w = map_multilevel_with(&tg, &m, &alloc, kind, &cfg, &mut warm);
            assert_eq!(
                a.fine_mapping,
                w.fine_mapping,
                "{name}/{}: warm scratch diverged",
                kind.name()
            );
        }
    }
}

#[test]
fn multilevel_map_many_matches_the_sequential_loop() {
    // `map_many` with the Multilevel strategy must equal both the
    // always-sequential batched form and a plain loop of
    // `map_multilevel` — under the `parallel` feature and without it
    // (CI runs this test in both configurations; the sequential loop
    // is feature-independent, so equality here pins bit-identity
    // across the feature too).
    let cfg = ml_cfg();
    let machs = machines();
    let allocs: Vec<Allocation> = machs
        .iter()
        .map(|(_, m)| Allocation::generate(m, &AllocSpec::sparse(8, 5)))
        .collect();
    let tg = big_graph(112, 0.125);
    let mut requests = Vec::new();
    let mut plan = Vec::new();
    for (i, (_, m)) in machs.iter().enumerate() {
        for kind in KINDS {
            requests.push(MapRequest {
                tasks: &tg,
                machine: m,
                alloc: &allocs[i],
                kind,
                strategy: MapStrategy::Multilevel,
                cfg: &cfg,
            });
            plan.push((i, kind));
        }
    }
    let batched = map_many(&requests);
    let sequential = map_many_seq(&requests);
    assert_eq!(batched.len(), plan.len());
    for (r, &(i, kind)) in plan.iter().enumerate() {
        let single = map_multilevel(&tg, &machs[i].1, &allocs[i], kind, &cfg);
        assert_eq!(
            batched[r].fine_mapping,
            single.fine_mapping,
            "request {r} ({}/{}): batched diverged",
            machs[i].0,
            kind.name()
        );
        assert_eq!(
            sequential[r].fine_mapping, single.fine_mapping,
            "request {r}: sequential diverged"
        );
        assert_eq!(batched[r].group_of, single.group_of, "request {r}");
    }
}

#[test]
fn multilevel_is_bit_identical_with_oracle_on_and_off() {
    let cfg = ml_cfg();
    for (name, m) in machines() {
        let mut analytic = m.clone();
        analytic.set_oracle_threshold(0);
        assert!(m.oracle().is_some() && analytic.oracle().is_none());
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 7));
        let tg = big_graph(96, 0.125);
        for kind in KINDS {
            let with_oracle = map_multilevel(&tg, &m, &alloc, kind, &cfg);
            let without = map_multilevel(&tg, &analytic, &alloc, kind, &cfg);
            assert_eq!(
                with_oracle.fine_mapping,
                without.fine_mapping,
                "{name}/{}: oracle changed the mapping",
                kind.name()
            );
        }
    }
}

#[test]
fn multilevel_wh_is_within_ten_percent_of_direct() {
    // The acceptance bound: on graphs no more than 10 × the machine
    // (|Vt| ≤ 10 |Va|), the multilevel UWH mapping's weighted hops
    // stay within 10 % of the direct pipeline's — with the DEFAULT
    // multilevel configuration, as a user would run it.
    let cfg = PipelineConfig::default();
    for (name, m) in machines() {
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 11));
        // 10 × |Va| = 80 tasks, fill 0.5.
        let tg = big_graph(80, 0.2);
        let direct = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &cfg);
        let ml = map_multilevel(&tg, &m, &alloc, MapperKind::GreedyWh, &cfg);
        validate_mapping(&tg, &alloc, &ml.fine_mapping).unwrap();
        let wh_direct = evaluate(&tg, &m, &direct.fine_mapping).wh;
        let wh_ml = evaluate(&tg, &m, &ml.fine_mapping).wh;
        assert!(
            wh_ml <= 1.10 * wh_direct + 1e-9,
            "{name}: multilevel WH {wh_ml} vs direct WH {wh_direct} (ratio {:.3})",
            wh_ml / wh_direct
        );
    }
}

#[test]
fn hierarchy_actually_forms_on_large_graphs() {
    let cfg = ml_cfg();
    let m = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 3));
    let tg = big_graph(256, 0.0625);
    let mut scratch = MapperScratch::new();
    let mut out = Vec::new();
    let stats = multilevel_map_into(
        &tg,
        &m,
        &alloc,
        MapperKind::GreedyWh,
        &cfg,
        &mut scratch,
        &mut out,
    );
    assert!(
        stats.levels >= 3,
        "256 tasks at fill 0.5 should coarsen several levels: {stats:?}"
    );
    assert!(
        stats.coarsest_tasks <= 64,
        "coarsest graph too large: {stats:?}"
    );
    validate_mapping(&tg, &alloc, &out).unwrap();
}

#[test]
fn baselines_route_through_the_direct_pipeline() {
    let cfg = ml_cfg();
    let m = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 2));
    let tg = big_graph(64, 0.25);
    for kind in [MapperKind::Def, MapperKind::Tmap, MapperKind::Smap] {
        let ml = map_multilevel(&tg, &m, &alloc, kind, &cfg);
        let direct = map_tasks(&tg, &m, &alloc, kind, &cfg);
        assert_eq!(
            ml.fine_mapping,
            direct.fine_mapping,
            "{}: baseline must delegate to the direct pipeline",
            kind.name()
        );
    }
}
