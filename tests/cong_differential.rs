//! Differential harness for the rewritten congestion-refinement hot
//! path (DESIGN.md §13).
//!
//! The route-caching PR rewrote Algorithm 3's probe loop around cached
//! routes, epoch-marked dedup and read-only probes, promising
//! **bit-identical mappings** — same probe order, same accept rule,
//! same float accumulation order. This test pins that promise across
//! the backend × preset matrix three ways per fixture:
//!
//! * the rewritten engine with the **route cache on** (default),
//! * the rewritten engine with the **route cache off**
//!   (`Machine::set_route_cache_threshold(0)` — the analytic fallback
//!   CI keeps honest by running this test in both feature configs),
//! * the **pre-rewrite engine**, preserved verbatim as
//!   `umpa::core::cong_reference::congestion_refine_reference`.
//!
//! All three must produce the same mapping vector and exactly equal
//! `(MC, AC)` (plain `==` on the floats — the engines promise identical
//! arithmetic, not merely close results). The matrix covers tori
//! including extent-1 and extent-2 dimensions (the link-id regression
//! family), a mesh, a fat-tree and a dragonfly, each under both
//! congestion kinds, with the distance oracle on and off, through one
//! warm scratch shared across every case.

use umpa::core::cong_reference::congestion_refine_reference;
use umpa::core::cong_refine::{congestion_refine_scratch, CongRefineConfig, CongScratch};
use umpa::graph::TaskGraph;
use umpa::topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, Machine, MachineConfig,
};

/// The backend × preset matrix: label + machine constructor.
fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("torus 4x4", MachineConfig::small(&[4, 4], 1, 2).build()),
        (
            "torus 3x3x2",
            MachineConfig::small(&[3, 3, 2], 2, 2).build(),
        ),
        (
            "torus extent-1",
            MachineConfig::small(&[1, 6], 1, 2).build(),
        ),
        (
            "torus extent-2",
            MachineConfig::small(&[2, 4], 1, 2).build(),
        ),
        ("mesh 4x3", MachineConfig::small_mesh(&[4, 3], 1, 2).build()),
        ("fat-tree k=4", FatTreeConfig::small(4, 2, 2).build()),
        ("dragonfly 3x3", DragonflyConfig::small(3, 3, 2).build()),
    ]
}

/// A communication-heavy fixture: ring + chords with skewed weights, so
/// refinement has real congestion to chase on every backend.
fn task_graph(n: u32, seed: u64) -> TaskGraph {
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 2) % n, w),
            ((i + 3) % n, i, 0.5 * w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

fn initial_mapping(alloc: &Allocation, tasks: usize) -> Vec<u32> {
    (0..tasks)
        .map(|t| alloc.node(t % alloc.num_nodes()))
        .collect()
}

#[test]
fn cache_on_cache_off_and_reference_are_bit_identical() {
    let mut scratch = CongScratch::new();
    for (label, machine) in machines() {
        // Oracle on and off: the WH-damage candidate tiebreak runs
        // through both the table rows and the analytic distances.
        for oracle_on in [true, false] {
            let mut cache_on = machine.clone();
            let mut cache_off = machine.clone();
            cache_off.set_route_cache_threshold(0);
            if !oracle_on {
                cache_on.set_oracle_threshold(0);
                cache_off.set_oracle_threshold(0);
            }
            let nodes = (machine.num_nodes() / 2).max(2);
            for seed in 0..3u64 {
                let alloc = Allocation::generate(&cache_on, &AllocSpec::sparse(nodes, seed));
                let tasks = alloc.num_nodes() * machine.procs_per_node() as usize;
                let tg = task_graph(tasks as u32, seed);
                for cfg in [CongRefineConfig::volume(), CongRefineConfig::messages()] {
                    let base = initial_mapping(&alloc, tasks);

                    let mut m_ref = base.clone();
                    let out_ref =
                        congestion_refine_reference(&tg, &cache_on, &alloc, &mut m_ref, &cfg);

                    let mut m_on = base.clone();
                    let out_on = congestion_refine_scratch(
                        &tg,
                        &cache_on,
                        &alloc,
                        &mut m_on,
                        &cfg,
                        &mut scratch,
                    );
                    assert!(
                        scratch.stats().route_cache_hit_rate() == 1.0
                            || scratch.stats().route_queries == 0,
                        "{label}: cache-on run did not serve routes from the cache"
                    );

                    let mut m_off = base.clone();
                    let out_off = congestion_refine_scratch(
                        &tg,
                        &cache_off,
                        &alloc,
                        &mut m_off,
                        &cfg,
                        &mut scratch,
                    );
                    assert_eq!(
                        scratch.stats().route_cache_hits,
                        0,
                        "{label}: cache-off run touched the cache"
                    );

                    let kind = cfg.kind;
                    assert_eq!(
                        m_on, m_off,
                        "{label} seed {seed} {kind:?} oracle {oracle_on}: cache on/off mappings diverged"
                    );
                    assert_eq!(
                        out_on, out_off,
                        "{label} seed {seed} {kind:?} oracle {oracle_on}: cache on/off (MC, AC) diverged"
                    );
                    assert_eq!(
                        m_on, m_ref,
                        "{label} seed {seed} {kind:?} oracle {oracle_on}: rewrite diverged from the pre-rewrite engine"
                    );
                    assert_eq!(
                        out_on, out_ref,
                        "{label} seed {seed} {kind:?} oracle {oracle_on}: (MC, AC) diverged from the pre-rewrite engine"
                    );
                }
            }
        }
    }
}

#[test]
fn full_pipeline_umc_is_unchanged_by_the_cache_mode() {
    // End-to-end: the UMC/UMMC mappers through `map_tasks` must be
    // identical with the route memo disabled.
    use umpa::core::pipeline::{map_tasks, MapperKind, PipelineConfig};
    let cfg = PipelineConfig::default();
    for (label, machine) in machines() {
        let mut no_cache = machine.clone();
        no_cache.set_route_cache_threshold(0);
        let nodes = (machine.num_nodes() / 2).max(2);
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 7));
        // Fine tasks fill the allocation exactly (phase 1 groups them
        // into per-node groups bounded by the processor counts).
        let tg = task_graph(
            (alloc.num_nodes() * machine.procs_per_node() as usize) as u32,
            1,
        );
        for kind in [MapperKind::GreedyMc, MapperKind::GreedyMmc] {
            let with = map_tasks(&tg, &machine, &alloc, kind, &cfg);
            let without = map_tasks(&tg, &no_cache, &alloc, kind, &cfg);
            assert_eq!(
                with.fine_mapping,
                without.fine_mapping,
                "{label}: {} mapping changed with the route cache off",
                kind.name()
            );
        }
    }
}
