//! Differential harness for fault-tolerant incremental remapping
//! (DESIGN.md §14).
//!
//! Three promises are pinned here, across the backend × preset matrix
//! (torus / fat-tree / dragonfly) and seeded churn streams from
//! `umpa_matgen::churn`:
//!
//! * **feasibility** — after every churn event, `remap_incremental`
//!   either returns a mapping that validates feasible or a clean
//!   [`RemapOutcome::Infeasible`] whose placed remainder is feasible
//!   (never a panic, never a silently broken mapping);
//! * **bounded quality gap** — after a whole churn stream, the repaired
//!   mapping's weighted hops stay within a constant factor of mapping
//!   the final machine/allocation from scratch with the full pipeline;
//! * **cache invalidation** — the lazily-built distance oracle and
//!   route cache are rebuilt, not served stale, when a link hard-fails
//!   or recovers (the stale-cache bug class `Machine::degrade_link`'s
//!   docs call out), and a restore returns distances and routes
//!   byte-identical to the pristine machine.

use std::time::Instant;

use umpa::core::remap::{remap_incremental, ChurnEvent, RemapConfig, RemapOutcome};
use umpa::core::{
    is_valid_mapping, map_tasks, map_tasks_with, validate_mapping, MapperKind, MapperScratch,
    PipelineConfig,
};
use umpa::graph::TaskGraph;
use umpa::matgen::churn::{churn_sequence, ChurnSpec};
use umpa::topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, LinkMode, Machine, MachineConfig,
};

/// The three-backend matrix of the acceptance criteria.
fn machines() -> Vec<(&'static str, Machine)> {
    vec![
        (
            "torus 4x4x2",
            MachineConfig::small(&[4, 4, 2], 1, 2).build(),
        ),
        ("fat-tree k=4", FatTreeConfig::small(4, 2, 2).build()),
        ("dragonfly 3x3", DragonflyConfig::small(3, 3, 2).build()),
    ]
}

/// Ring + chords with skewed weights — communication with structure to
/// lose, so bad repairs show up in WH.
fn task_graph(n: u32, seed: u64) -> TaskGraph {
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

/// The weight-feasible remainder of a partially placed mapping is
/// itself a valid mapping (every placed task on an allocated node,
/// no slot over capacity).
fn assert_remainder_feasible(tg: &TaskGraph, alloc: &Allocation, mapping: &[u32]) {
    let mut load = vec![0.0f64; alloc.num_nodes()];
    for (t, &node) in mapping.iter().enumerate() {
        if node == u32::MAX {
            continue;
        }
        let slot = alloc
            .slot_of(node)
            .unwrap_or_else(|| panic!("task {t} placed on unallocated node {node}"));
        load[slot as usize] += tg.task_weight(t as u32);
    }
    for (slot, &l) in load.iter().enumerate() {
        assert!(
            l <= f64::from(alloc.procs(slot)) + 1e-9,
            "slot {slot} over capacity"
        );
    }
}

/// Physical link id of a routed channel id under the machine's mode.
fn physical(machine: &Machine, channel: u32) -> u32 {
    match machine.link_mode() {
        LinkMode::Directed => channel / 2,
        LinkMode::Undirected => channel,
    }
}

/// Feasibility after every event of seeded churn streams, on every
/// backend. Repairs replay event-by-event through one warm scratch.
#[test]
fn differential_every_event_feasible_or_cleanly_infeasible() {
    for (label, machine) in machines() {
        for seed in 0..3u64 {
            let mut machine = machine.clone();
            let nodes = (machine.num_nodes() * 3 / 4).max(4);
            let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, seed));
            let tasks = alloc.total_procs();
            let tg = task_graph(tasks, seed);
            let mut mapping = map_tasks(
                &tg,
                &machine,
                &alloc,
                MapperKind::GreedyMc,
                &PipelineConfig::default(),
            )
            .fine_mapping;
            validate_mapping(&tg, &alloc, &mapping).unwrap();
            let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(30, seed + 100));
            let mut scratch = MapperScratch::new();
            for (i, ev) in events.iter().enumerate() {
                let out = remap_incremental(
                    &tg,
                    &mut machine,
                    &mut alloc,
                    &mut mapping,
                    std::slice::from_ref(ev),
                    &RemapConfig::default(),
                    &mut scratch,
                );
                match out {
                    RemapOutcome::Repaired(stats) => {
                        assert!(
                            is_valid_mapping(&tg, &alloc, &mapping),
                            "{label} seed {seed} event {i}: repaired mapping invalid"
                        );
                        assert!(stats.frontier >= stats.displaced);
                    }
                    RemapOutcome::Infeasible { ref unplaced } => {
                        assert!(!unplaced.is_empty());
                        for &t in unplaced {
                            assert_eq!(mapping[t as usize], u32::MAX);
                        }
                        assert_remainder_feasible(&tg, &alloc, &mapping);
                    }
                }
            }
        }
    }
}

/// One repair stays within the acceptance bound of mapping the damaged
/// state from scratch: the mean WH ratio across the backend × seed
/// matrix is within 15%, and no single case exceeds 25% (local repair
/// can land in a placement-structure local optimum a full re-map
/// escapes; the bound caps how bad that gets). WH-only repair against
/// the WH-refined mapper: the congestion polish deliberately trades WH
/// for MC, which would make a WH-vs-WH comparison apples-to-oranges
/// (the release bench reports the congestion-side quality ratio).
/// Long streams are feasibility-tested above; quality is a per-repair
/// contract.
#[test]
fn differential_quality_gap_is_bounded() {
    let cfg = RemapConfig {
        frontier_hops: 2,
        wh: Some(umpa::core::WhRefineConfig {
            delta: 16,
            max_passes: 4,
            ..Default::default()
        }),
        cong: None,
    };
    let mut ratios = Vec::new();
    for (label, machine) in machines() {
        for seed in 0..4u64 {
            let mut machine = machine.clone();
            let nodes = (machine.num_nodes() * 3 / 4).max(4);
            let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, seed));
            // Headroom so losing two nodes stays feasible.
            let tasks = alloc.total_procs() / 2;
            let tg = task_graph(tasks, seed);
            let mut scratch = MapperScratch::new();
            let mut mapping = map_tasks_with(
                &tg,
                &machine,
                &alloc,
                MapperKind::GreedyWh,
                &PipelineConfig::default(),
                &mut scratch,
            )
            .fine_mapping;
            // One damage batch: two occupied nodes die at once.
            let events = [
                ChurnEvent::NodeFailed { node: mapping[0] },
                ChurnEvent::NodeFailed {
                    node: mapping[mapping.len() / 2],
                },
            ];
            let out = remap_incremental(
                &tg,
                &mut machine,
                &mut alloc,
                &mut mapping,
                &events,
                &cfg,
                &mut scratch,
            );
            let repaired_wh = out
                .stats()
                .unwrap_or_else(|| panic!("{label} seed {seed}: repair infeasible"))
                .wh_after;
            let scratch_mapping = map_tasks(
                &tg,
                &machine,
                &alloc,
                MapperKind::GreedyWh,
                &PipelineConfig::default(),
            )
            .fine_mapping;
            let scratch_wh = umpa::core::greedy::weighted_hops(&tg, &machine, &scratch_mapping);
            let ratio = repaired_wh / scratch_wh.max(1e-12);
            assert!(
                ratio <= 1.25,
                "{label} seed {seed}: repaired WH {repaired_wh} vs from-scratch {scratch_wh}"
            );
            ratios.push(ratio);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean <= 1.15,
        "mean repaired/from-scratch WH ratio {mean} exceeds the 15% acceptance bound"
    );
}

/// Incremental repair of a single node failure is much faster than a
/// full re-map on a medium instance. The release-mode bench reports the
/// real p50/p99 ratios; this is the debug-mode smoke bound.
#[test]
fn repair_is_faster_than_full_remap() {
    let mut machine = MachineConfig::small(&[8, 8, 4], 2, 2).build();
    let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(320, 11));
    let tasks = alloc.total_procs() / 2;
    let tg = task_graph(tasks, 1);
    let mut scratch = MapperScratch::new();
    let mut mapping = map_tasks_with(
        &tg,
        &machine,
        &alloc,
        MapperKind::GreedyMc,
        &PipelineConfig::default(),
        &mut scratch,
    )
    .fine_mapping;
    // Warm everything once.
    let warm = [
        ChurnEvent::NodeFailed {
            node: alloc.node(0),
        },
        ChurnEvent::NodesAdded {
            nodes: vec![alloc.node(0)],
        },
    ];
    for ev in &warm {
        remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            std::slice::from_ref(ev),
            &RemapConfig::default(),
            &mut scratch,
        );
    }
    let mut repair_worst = 0.0f64;
    for i in 0..10 {
        let victim = alloc.node(i * 7 % alloc.num_nodes());
        let events = [
            ChurnEvent::NodeFailed { node: victim },
            ChurnEvent::NodesAdded {
                nodes: vec![victim],
            },
        ];
        for ev in &events {
            let t0 = Instant::now();
            let out = remap_incremental(
                &tg,
                &mut machine,
                &mut alloc,
                &mut mapping,
                std::slice::from_ref(ev),
                &RemapConfig::default(),
                &mut scratch,
            );
            repair_worst = repair_worst.max(t0.elapsed().as_secs_f64());
            assert!(out.is_repaired());
        }
    }
    let t0 = Instant::now();
    let full = map_tasks_with(
        &tg,
        &machine,
        &alloc,
        MapperKind::GreedyMc,
        &PipelineConfig::default(),
        &mut scratch,
    );
    let full_time = t0.elapsed().as_secs_f64();
    assert!(is_valid_mapping(&tg, &alloc, &full.fine_mapping));
    assert!(
        repair_worst * 3.0 < full_time,
        "worst repair {repair_worst}s not well below full re-map {full_time}s"
    );
}

/// Oracle invalidation: hop distances change when a link on the route
/// hard-fails, and return exactly to the pristine values on restore —
/// on all three backends.
#[test]
fn oracle_is_invalidated_on_link_failure_and_restore() {
    for (label, mut machine) in machines() {
        let n = machine.num_nodes() as u32;
        // Find a node pair with a non-empty route.
        let (a, b, link) = 'found: {
            for a in 0..n {
                for b in 0..n {
                    let route = machine.route_links_vec(a, b);
                    if !route.is_empty() {
                        break 'found (a, b, physical(&machine, route[0]));
                    }
                }
            }
            panic!("{label}: no routed pair found");
        };
        let before_hops = machine.hops(a, b);
        let before_route = machine.route_links_vec(a, b);
        machine.degrade_link(link, 0.0);
        assert!(machine.has_failed_links());
        // The old route crossed the failed link; the recomputed one
        // must not (stale caches would).
        let after_route = machine.route_links_vec(a, b);
        assert!(
            after_route.iter().all(|&c| physical(&machine, c) != link),
            "{label}: route still crosses failed link {link}"
        );
        let after_hops = machine.hops(a, b);
        assert!(
            after_hops >= before_hops,
            "{label}: masked distance shorter than geodesic"
        );
        assert_eq!(
            after_route.len() as u32,
            after_hops,
            "{label}: masked route length != masked distance"
        );
        machine.restore_link(link);
        assert!(!machine.has_failed_links());
        assert_eq!(machine.hops(a, b), before_hops, "{label}: restore");
        assert_eq!(machine.route_links_vec(a, b), before_route, "{label}");
    }
}

/// Consistency of the masked products across every pair: route length
/// equals masked distance, and no route crosses the failed link.
#[test]
fn masked_routes_and_distances_agree_on_every_pair() {
    for (label, mut machine) in machines() {
        let n = machine.num_nodes() as u32;
        let link = physical(&machine, machine.route_links_vec(0, n - 1)[0]);
        machine.degrade_link(link, 0.0);
        let mut route = Vec::new();
        for a in 0..n {
            for b in 0..n {
                route.clear();
                machine.route_links(a, b, &mut route);
                assert!(
                    route.iter().all(|&c| physical(&machine, c) != link),
                    "{label}: {a}->{b} crosses failed link"
                );
                if machine.router_of(a) != machine.router_of(b) {
                    assert_eq!(
                        route.len() as u32,
                        machine.hops(a, b),
                        "{label}: {a}->{b} route/distance mismatch"
                    );
                }
            }
        }
    }
}

/// Soft degradation (factor > 0) changes bandwidth but neither routes
/// nor distances — and does not enter masked-routing mode.
#[test]
fn soft_degradation_keeps_routes_and_distances() {
    for (label, mut machine) in machines() {
        let n = machine.num_nodes() as u32;
        let route = machine.route_links_vec(0, n - 1);
        let channel = route[0];
        let link = physical(&machine, channel);
        let hops = machine.hops(0, n - 1);
        let bw = machine.link_bandwidth(channel);
        machine.degrade_link(link, 0.5);
        assert!(!machine.has_failed_links(), "{label}");
        assert_eq!(machine.hops(0, n - 1), hops, "{label}");
        assert_eq!(machine.route_links_vec(0, n - 1), route, "{label}");
        assert!(
            (machine.link_bandwidth(channel) - 0.5 * bw).abs() < 1e-12,
            "{label}: bandwidth not scaled"
        );
        machine.restore_link(link);
        assert!((machine.link_bandwidth(channel) - bw).abs() < 1e-12);
    }
}

/// Repair under an actual hard link failure: routes around the dead
/// link, mapping stays feasible, and congestion refinement (which
/// walks cached routes) sees the masked routes.
#[test]
fn repair_under_hard_link_failure_stays_feasible() {
    for (label, machine) in machines() {
        let mut machine = machine.clone();
        let nodes = (machine.num_nodes() * 3 / 4).max(4);
        let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 2));
        let tasks = alloc.total_procs() / 2;
        let tg = task_graph(tasks, 2);
        let mut scratch = MapperScratch::new();
        let mut mapping = map_tasks_with(
            &tg,
            &machine,
            &alloc,
            MapperKind::GreedyMc,
            &PipelineConfig::default(),
            &mut scratch,
        )
        .fine_mapping;
        let n = machine.num_nodes() as u32;
        let link = physical(&machine, machine.route_links_vec(0, n - 1)[0]);
        let victim = mapping[0];
        let events = [
            ChurnEvent::LinkDegraded { link, factor: 0.0 },
            ChurnEvent::NodeFailed { node: victim },
        ];
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &events,
            &RemapConfig::default(),
            &mut scratch,
        );
        assert!(out.is_repaired(), "{label}");
        assert!(is_valid_mapping(&tg, &alloc, &mapping), "{label}");
        assert!(machine.has_failed_links());
        // Recover fully: the machine must behave as freshly built.
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::LinkDegraded { link, factor: 1.0 }],
            &RemapConfig::default(),
            &mut scratch,
        );
        assert!(out.is_repaired(), "{label}");
        assert!(!machine.has_failed_links());
    }
}

/// Shrinking the allocation to nothing, one failure at a time, ends in
/// a clean `Infeasible` that lists every task — and growth repairs it.
#[test]
fn repeated_failures_to_zero_allocation_then_regrow() {
    let mut machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(4, 5));
    let original: Vec<u32> = alloc.nodes().to_vec();
    let tg = task_graph(8, 3);
    let mut scratch = MapperScratch::new();
    let mut mapping = map_tasks_with(
        &tg,
        &machine,
        &alloc,
        MapperKind::Greedy,
        &PipelineConfig::default(),
        &mut scratch,
    )
    .fine_mapping;
    let mut saw_infeasible = false;
    for &node in &original {
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodeFailed { node }],
            &RemapConfig::default(),
            &mut scratch,
        );
        match out {
            RemapOutcome::Repaired(_) => assert!(is_valid_mapping(&tg, &alloc, &mapping)),
            RemapOutcome::Infeasible { .. } => {
                saw_infeasible = true;
                assert_remainder_feasible(&tg, &alloc, &mapping);
            }
        }
    }
    assert!(saw_infeasible);
    assert_eq!(alloc.num_nodes(), 0);
    assert!(mapping.iter().all(|&n| n == u32::MAX));
    let out = remap_incremental(
        &tg,
        &mut machine,
        &mut alloc,
        &mut mapping,
        &[ChurnEvent::NodesAdded { nodes: original }],
        &RemapConfig::default(),
        &mut scratch,
    );
    assert!(out.is_repaired());
    validate_mapping(&tg, &alloc, &mapping).unwrap();
}

/// `placement_only` repairs without refinement still validate; the
/// default config never does worse than placement-only on WH.
#[test]
fn refinement_polish_helps_or_ties() {
    let machine0 = MachineConfig::small(&[4, 4, 2], 1, 2).build();
    let alloc0 = Allocation::generate(&machine0, &AllocSpec::sparse(16, 9));
    let tg = task_graph(alloc0.total_procs() / 2, 9);
    let base = map_tasks(
        &tg,
        &machine0,
        &alloc0,
        MapperKind::GreedyMc,
        &PipelineConfig::default(),
    )
    .fine_mapping;
    let victims = [base[0], base[3]];
    let mut results = Vec::new();
    for cfg in [RemapConfig::placement_only(), RemapConfig::default()] {
        let (mut machine, mut alloc, mut mapping) =
            (machine0.clone(), alloc0.clone(), base.clone());
        let mut scratch = MapperScratch::new();
        let events: Vec<ChurnEvent> = victims
            .iter()
            .map(|&v| ChurnEvent::NodeFailed { node: v })
            .collect();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &events,
            &cfg,
            &mut scratch,
        );
        let stats = *out.stats().expect("repairable");
        assert!(is_valid_mapping(&tg, &alloc, &mapping));
        results.push(stats.wh_after);
    }
    assert!(
        results[1] <= results[0] + 1e-9,
        "refined repair {} worse than placement-only {}",
        results[1],
        results[0]
    );
}
