//! Steady-state allocation test for the mapping engine.
//!
//! The perf contract of the scratch architecture (DESIGN.md §8): once a
//! [`MapperScratch`]'s buffers are warm, the phase-2 mapping engine —
//! greedy growth, WH refinement, congestion refinement — performs
//! **zero heap allocations**. Verified with a counting global
//! allocator; this test lives alone in its binary so no other test's
//! allocations pollute the counter.
//!
//! Phase 1 (the METIS-role partitioner, shared by all mappers and
//! excluded from the paper's timings) builds coarse graphs and still
//! allocates; the full `map_tasks_with` is therefore checked for a
//! strict allocation *reduction* against the cold path rather than
//! zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use umpa::core::cong_refine::{congestion_refine_scratch, CongRefineConfig};
use umpa::core::greedy::{greedy_map_into, GreedyConfig};
use umpa::core::multilevel::{multilevel_map_into, MultilevelConfig};
use umpa::core::pipeline::{map_tasks, map_tasks_with, MapperKind, PipelineConfig};
use umpa::core::scratch::MapperScratch;
use umpa::core::wh_refine::{wh_refine_scratch, WhRefineConfig};
use umpa::graph::TaskGraph;
use umpa::topology::{AllocSpec, Allocation, Machine, MachineConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The counter is process-global and libtest runs tests on worker
/// threads: serialize every measuring test so one test's allocations
/// never pollute another's window.
static MEASURE: Mutex<()> = Mutex::new(());

/// Counts `f`'s allocations over 5 runs, retrying on a nonzero count.
///
/// Even with the [`MEASURE`] serialization, libtest's *main* thread
/// occasionally processes the previous test's result (formatting its
/// name allocates) concurrently with the next test's measured window —
/// a rare two-allocation blip that has nothing to do with the code
/// under test. The engine is deterministic, so one clean attempt out
/// of three proves the zero-allocation contract. Only blip-sized
/// counts (≤ 4) are retried: a larger count is a real engine
/// allocation — e.g. a buffer still growing past the warmup's
/// high-water mark — and is reported immediately. Known bound: a
/// *one-time* regression of ≤ 4 allocations landing past the warmup
/// is indistinguishable from the libtest blip and can slip through;
/// recurring (per-run) allocations always fail every attempt.
fn measure_steady_state(mut f: impl FnMut()) -> u64 {
    let mut counted = u64::MAX;
    for _ in 0..3 {
        let before = allocs();
        for _ in 0..5 {
            f();
        }
        counted = allocs() - before;
        if counted == 0 || counted > 4 {
            break;
        }
    }
    counted
}

#[test]
fn warm_scratch_mapping_engine_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    // A 32-task graph on 8 nodes × 4 procs — the coarse problem the
    // phase-2 engine sees after grouping — on every topology backend:
    // the §8 perf contract is backend-generic. One scratch serves all
    // three machines in sequence (buffers grow to the union high-water
    // mark and are then reused verbatim).
    // Each backend runs three times: once with the distance-oracle
    // table and route cache (both built during warmup — the OnceLock
    // builds are one-time costs, not steady state), once with the
    // oracle disabled, and once with the §13 route cache disabled, so
    // the oracle path, the analytic-distance fallback and the
    // analytic-routing fallback of the rewritten congestion engine all
    // honor the contract.
    let machines: Vec<Machine> = [
        MachineConfig::small(&[4, 4], 1, 4).build(),
        umpa::topology::FatTreeConfig::small(4, 1, 4).build(),
        umpa::topology::DragonflyConfig {
            procs_per_node: 4,
            ..umpa::topology::DragonflyConfig::small(3, 3, 1)
        }
        .build(),
    ]
    .into_iter()
    .flat_map(|m| {
        let mut no_oracle = m.clone();
        no_oracle.set_oracle_threshold(0);
        let mut no_routes = m.clone();
        no_routes.set_route_cache_threshold(0);
        [m, no_oracle, no_routes]
    })
    .collect();
    let tg = TaskGraph::from_messages(
        32,
        (0..32u32).flat_map(|i| [(i, (i + 1) % 32, 4.0), (i, (i + 5) % 32, 1.0)]),
        None,
    );
    let greedy_cfg = GreedyConfig::default();
    let wh_cfg = WhRefineConfig::default();
    let mc_cfg = CongRefineConfig::volume();
    let mut scratch = MapperScratch::new();
    let mut mapping: Vec<u32> = Vec::new();

    for machine in &machines {
        let alloc = Allocation::generate(machine, &AllocSpec::sparse(8, 2));
        let run = |scratch: &mut MapperScratch, mapping: &mut Vec<u32>| {
            greedy_map_into(
                &tg,
                machine,
                &alloc,
                &greedy_cfg,
                &mut scratch.greedy,
                mapping,
            );
            wh_refine_scratch(&tg, machine, &alloc, mapping, &wh_cfg, &mut scratch.wh);
            congestion_refine_scratch(&tg, machine, &alloc, mapping, &mc_cfg, &mut scratch.cong);
        };

        // Warmup: size every buffer to this problem's high-water mark.
        run(&mut scratch, &mut mapping);
        run(&mut scratch, &mut mapping);
        let reference = mapping.clone();

        let counted = measure_steady_state(|| run(&mut scratch, &mut mapping));
        assert_eq!(
            counted,
            0,
            "steady-state mapping engine allocated {} times over 5 warm runs on {} (oracle {}, route cache {})",
            counted,
            machine.topology().summary(),
            if machine.oracle().is_some() {
                "on"
            } else {
                "off"
            },
            if machine.route_cache().is_some() {
                "on"
            } else {
                "off"
            }
        );
        // And the warm runs still compute the real thing.
        assert_eq!(mapping, reference);
    }
}

#[test]
fn warm_multilevel_run_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    // The DESIGN.md §12 contract: once the hierarchy and scratch are
    // warm, a full multilevel run — matching, per-level quotient graph
    // rebuilds, coarsest greedy map, per-level refinement, projection —
    // performs zero heap allocations, on every topology backend with
    // the distance oracle on AND off, for every greedy-family kind
    // (UMMC exercises the parallel message-count hierarchy).
    let machines: Vec<Machine> = [
        MachineConfig::small(&[4, 4], 1, 4).build(),
        umpa::topology::FatTreeConfig::small(4, 1, 4).build(),
        umpa::topology::DragonflyConfig {
            procs_per_node: 4,
            ..umpa::topology::DragonflyConfig::small(3, 3, 1)
        }
        .build(),
    ]
    .into_iter()
    .flat_map(|m| {
        let mut fallback = m.clone();
        fallback.set_oracle_threshold(0);
        [m, fallback]
    })
    .collect();
    // 96 tasks at fill 0.375 of the 8-node allocation: several
    // hierarchy levels under the eager coarsening config below.
    let tg = TaskGraph::from_messages(
        96,
        (0..96u32).flat_map(|i| [(i, (i + 1) % 96, 4.0), (i, (i + 7) % 96, 1.0)]),
        Some(vec![0.125; 96]),
    );
    let cfg = PipelineConfig {
        multilevel: MultilevelConfig {
            coarsen_min: 8,
            coarsen_factor: 1.5,
            ..MultilevelConfig::default()
        },
        ..PipelineConfig::default()
    };
    let kinds = [
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
        MapperKind::GreedyMmc,
    ];
    let mut scratch = MapperScratch::new();
    let mut mapping: Vec<u32> = Vec::new();
    for machine in &machines {
        let alloc = Allocation::generate(machine, &AllocSpec::sparse(8, 2));
        for kind in kinds {
            let run = |scratch: &mut MapperScratch, mapping: &mut Vec<u32>| {
                multilevel_map_into(&tg, machine, &alloc, kind, &cfg, scratch, mapping);
            };
            // Warmup: size the hierarchy and every engine buffer (and
            // build the oracle table where enabled).
            run(&mut scratch, &mut mapping);
            run(&mut scratch, &mut mapping);
            let reference = mapping.clone();
            let counted = measure_steady_state(|| run(&mut scratch, &mut mapping));
            assert_eq!(
                counted,
                0,
                "warm multilevel run allocated {} times over 5 runs on {} ({}, oracle {})",
                counted,
                machine.topology().summary(),
                kind.name(),
                if machine.oracle().is_some() {
                    "on"
                } else {
                    "off"
                }
            );
            assert_eq!(mapping, reference, "warm multilevel run diverged");
        }
    }
}

#[test]
fn heavy_first_pre_pass_is_also_allocation_free() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    // Non-uniform node capacities with a low heavy threshold drive
    // every task through the Section III-A heavy-first pre-pass (and
    // its sort), the one greedy path the uniform test never reaches.
    let machine = MachineConfig::small(&[4, 4], 1, 8).build();
    let mut alloc = Allocation::generate(&machine, &AllocSpec::contiguous(8));
    alloc.set_procs(vec![5, 4, 4, 4, 4, 4, 4, 3]);
    let tg = TaskGraph::from_messages(
        32,
        (0..32u32).flat_map(|i| [(i, (i + 1) % 32, 4.0), (i, (i + 5) % 32, 1.0)]),
        None,
    );
    let greedy_cfg = GreedyConfig {
        nbfs_candidates: vec![0, 1],
        // Every unit-weight task exceeds 0.01 × max_cap → all "heavy".
        heavy_first_fraction: 0.01,
    };
    let mut scratch = MapperScratch::new();
    let mut mapping: Vec<u32> = Vec::new();
    greedy_map_into(
        &tg,
        &machine,
        &alloc,
        &greedy_cfg,
        &mut scratch.greedy,
        &mut mapping,
    );
    let counted = measure_steady_state(|| {
        greedy_map_into(
            &tg,
            &machine,
            &alloc,
            &greedy_cfg,
            &mut scratch.greedy,
            &mut mapping,
        );
    });
    assert_eq!(
        counted, 0,
        "heavy-first greedy path allocated {counted} times over 5 warm runs"
    );
}

#[test]
fn warm_incremental_remap_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    // The DESIGN.md §14 contract: once the scratch is warm, repairing
    // node churn and *soft* link degradation allocates nothing — on
    // every topology backend. Hard link failures are excluded by
    // design: they rebuild the distance oracle and route cache, which
    // inherently allocates. The soft-degradation cycle alternates
    // between two factors (never back to exactly 1.0) so the failure
    // mask persists and the patch stays in place; a full restore drops
    // the mask and the next degradation would re-create it.
    use umpa::core::remap::{remap_incremental, ChurnEvent, RemapConfig};
    let machines: Vec<Machine> = vec![
        MachineConfig::small(&[4, 4], 1, 4).build(),
        umpa::topology::FatTreeConfig::small(4, 1, 4).build(),
        umpa::topology::DragonflyConfig {
            procs_per_node: 4,
            ..umpa::topology::DragonflyConfig::small(3, 3, 1)
        }
        .build(),
    ];
    let tg = TaskGraph::from_messages(
        24,
        (0..24u32).flat_map(|i| [(i, (i + 1) % 24, 4.0), (i, (i + 5) % 24, 1.0)]),
        None,
    );
    let cfg = RemapConfig::default();
    let mut scratch = MapperScratch::new();
    for machine in machines {
        let mut machine = machine;
        // 8 nodes × 4 procs for 24 unit tasks: headroom for a failure.
        let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 2));
        let mut mapping = Vec::new();
        greedy_map_into(
            &tg,
            &machine,
            &alloc,
            &GreedyConfig::default(),
            &mut scratch.greedy,
            &mut mapping,
        );
        let victim = alloc.node(3);
        // Events pre-constructed: the `NodesAdded` payload vector is
        // part of the churn input, not of the repair.
        let cycle = [
            ChurnEvent::NodeFailed { node: victim },
            ChurnEvent::NodesAdded {
                nodes: vec![victim],
            },
            ChurnEvent::LinkDegraded {
                link: 0,
                factor: 0.5,
            },
            ChurnEvent::LinkDegraded {
                link: 0,
                factor: 0.75,
            },
        ];
        let mut run = |scratch: &mut MapperScratch, mapping: &mut Vec<u32>| {
            for ev in &cycle {
                let out = remap_incremental(
                    &tg,
                    &mut machine,
                    &mut alloc,
                    mapping,
                    std::slice::from_ref(ev),
                    &cfg,
                    scratch,
                );
                assert!(out.is_repaired());
            }
        };
        // Warmup: size every repair buffer, build the oracle/route
        // cache and the fault mask's factor vector.
        run(&mut scratch, &mut mapping);
        run(&mut scratch, &mut mapping);
        let counted = measure_steady_state(|| run(&mut scratch, &mut mapping));
        assert_eq!(
            counted, 0,
            "warm incremental remap allocated {counted} times over 5 warm cycles"
        );
    }
}

#[test]
fn warm_pipeline_allocates_strictly_less_than_cold() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let machine = MachineConfig::small(&[4, 4], 1, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 2));
    let tg = TaskGraph::from_messages(
        32,
        (0..32u32).flat_map(|i| [(i, (i + 1) % 32, 4.0), (i, (i + 5) % 32, 1.0)]),
        None,
    );
    let cfg = PipelineConfig::default();
    let mut scratch = MapperScratch::new();
    // Warm the scratch.
    let warm_out = map_tasks_with(
        &tg,
        &machine,
        &alloc,
        MapperKind::GreedyWh,
        &cfg,
        &mut scratch,
    );

    let before_cold = allocs();
    let cold_out = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    let cold = allocs() - before_cold;

    let before_warm = allocs();
    let rewarm_out = map_tasks_with(
        &tg,
        &machine,
        &alloc,
        MapperKind::GreedyWh,
        &cfg,
        &mut scratch,
    );
    let warm = allocs() - before_warm;

    assert_eq!(warm_out.fine_mapping, cold_out.fine_mapping);
    assert_eq!(rewarm_out.fine_mapping, cold_out.fine_mapping);
    assert!(
        warm < cold,
        "warm pipeline should allocate strictly less: warm={warm} cold={cold}"
    );
}
