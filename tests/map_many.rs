//! Property: the batched `map_many` API is exactly a loop of
//! `map_tasks` — same mappings, same groupings, same fallback flags, in
//! request order — both without the `parallel` feature (one shared
//! scratch) and with it (per-worker scratch pool). Run under both
//! feature configurations in CI.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use umpa::core::pipeline::{
    map_many, map_many_seq, map_portfolio, map_tasks, MapRequest, MapStrategy, MapperKind,
    PipelineConfig,
};
use umpa::core::validate_mapping;
use umpa::graph::TaskGraph;
use umpa::topology::{AllocSpec, Allocation, Machine, MachineConfig};

fn random_task_graph(rng: &mut ChaCha8Rng, n: u32) -> TaskGraph {
    let m = rng.gen_range(1..40usize);
    TaskGraph::from_messages(
        n as usize,
        (0..m).map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                f64::from(rng.gen_range(1..100u32)),
            )
        }),
        None,
    )
}

/// `(graph index, alloc index, mapper)` per request.
type BatchPlan = Vec<(usize, usize, MapperKind)>;

/// A mixed batch: several task graphs × allocations × mapper kinds.
fn build_batch(
    machine: &Machine,
    rng: &mut ChaCha8Rng,
) -> (Vec<TaskGraph>, Vec<Allocation>, BatchPlan) {
    let graphs: Vec<TaskGraph> = (0..4).map(|_| random_task_graph(rng, 12)).collect();
    let allocs: Vec<Allocation> = (0..3)
        .map(|i| Allocation::generate(machine, &AllocSpec::sparse(6, 40 + i)))
        .collect();
    let kinds = [
        MapperKind::Def,
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
        MapperKind::GreedyMmc,
        MapperKind::Tmap,
        MapperKind::Smap,
    ];
    let mut plan = Vec::new();
    for (gi, _) in graphs.iter().enumerate() {
        for (ai, _) in allocs.iter().enumerate() {
            for &kind in &kinds {
                plan.push((gi, ai, kind));
            }
        }
    }
    (graphs, allocs, plan)
}

#[test]
fn map_many_matches_looped_map_tasks() {
    let machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A9);
    let cfg = PipelineConfig::default();
    let (graphs, allocs, plan) = build_batch(&machine, &mut rng);
    let requests: Vec<MapRequest<'_>> = plan
        .iter()
        .map(|&(gi, ai, kind)| MapRequest {
            tasks: &graphs[gi],
            machine: &machine,
            alloc: &allocs[ai],
            kind,
            strategy: MapStrategy::Direct,
            cfg: &cfg,
        })
        .collect();

    // The batched API (parallel when the feature is on)…
    let batched = map_many(&requests);
    // …the always-sequential batched form…
    let sequential = map_many_seq(&requests);
    assert_eq!(batched.len(), plan.len());
    for (i, &(gi, ai, kind)) in plan.iter().enumerate() {
        // …and the plain one-at-a-time loop.
        let single = map_tasks(&graphs[gi], &machine, &allocs[ai], kind, &cfg);
        assert_eq!(
            batched[i].fine_mapping, single.fine_mapping,
            "request {i} ({kind:?}): batched mapping diverged"
        );
        assert_eq!(
            sequential[i].fine_mapping, single.fine_mapping,
            "request {i} ({kind:?}): sequential batched mapping diverged"
        );
        assert_eq!(batched[i].group_of, single.group_of, "request {i}");
        assert_eq!(
            batched[i].tmap_fell_back, single.tmap_fell_back,
            "request {i}"
        );
        validate_mapping(&graphs[gi], &allocs[ai], &batched[i].fine_mapping)
            .unwrap_or_else(|e| panic!("request {i}: {e}"));
    }
}

#[test]
fn map_many_handles_trivial_batches() {
    let machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let cfg = PipelineConfig::default();
    assert!(map_many(&[]).is_empty());
    let tg = TaskGraph::from_messages(4, [(0, 1, 2.0), (2, 3, 1.0)], None);
    let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(2));
    let one = map_many(&[MapRequest {
        tasks: &tg,
        machine: &machine,
        alloc: &alloc,
        kind: MapperKind::Greedy,
        strategy: MapStrategy::Direct,
        cfg: &cfg,
    }]);
    assert_eq!(one.len(), 1);
    assert_eq!(
        one[0].fine_mapping,
        map_tasks(&tg, &machine, &alloc, MapperKind::Greedy, &cfg).fine_mapping
    );
}

#[test]
fn portfolio_matches_individual_runs() {
    let machine = MachineConfig::small(&[4, 4], 1, 2).build();
    let cfg = PipelineConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0x70F);
    let tg = random_task_graph(&mut rng, 12);
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(6, 3));
    let portfolio = map_portfolio(&tg, &machine, &alloc, &cfg);
    assert_eq!(portfolio.len(), MapperKind::all().len());
    for (i, kind) in MapperKind::all().into_iter().enumerate() {
        assert_eq!(portfolio[i].0, kind);
        let single = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        assert_eq!(
            portfolio[i].1.fine_mapping,
            single.fine_mapping,
            "{}: portfolio mapping diverged",
            kind.name()
        );
    }
}
