//! Distance-oracle contract tests (DESIGN.md §11).
//!
//! Two guarantees keep the oracle safe to put under every hot path:
//!
//! 1. **Agreement** — the dense table returns exactly the analytic
//!    `Topology::distance` for every terminal-router pair, on every
//!    backend preset, including the degenerate extent-1/extent-2 torus
//!    dimensions that historically hid link-id bugs;
//! 2. **Bit-identity** — the refinement engines produce the same
//!    mappings whether distances come from the table or the analytic
//!    fallback (hop counts are exact integers either way, so every
//!    float gain and therefore every swap decision coincides).

use umpa::core::cong_refine::{congestion_refine, CongRefineConfig};
use umpa::core::greedy::{greedy_map, weighted_hops, GreedyConfig};
use umpa::core::wh_refine::{wh_refine, WhRefineConfig};
use umpa::graph::TaskGraph;
use umpa::topology::{
    AllocSpec, Allocation, DistanceOracle, DragonflyConfig, FatTreeConfig, Machine, MachineConfig,
};

/// Every preset the sweep covers: torus (ordinary, extent-1, extent-2,
/// mesh), fat-tree, dragonfly.
fn preset_machines() -> Vec<(&'static str, Machine)> {
    vec![
        (
            "torus 4x4x4",
            MachineConfig::small(&[4, 4, 4], 2, 1).build(),
        ),
        ("torus 1x4", MachineConfig::small(&[1, 4], 1, 1).build()),
        ("torus 2x4", MachineConfig::small(&[2, 4], 1, 1).build()),
        ("torus 2x2", MachineConfig::small(&[2, 2], 1, 1).build()),
        ("mesh 4x3", MachineConfig::small_mesh(&[4, 3], 1, 1).build()),
        ("fat-tree k=4", FatTreeConfig::small(4, 2, 1).build()),
        ("dragonfly", DragonflyConfig::small(4, 3, 2).build()),
    ]
}

#[test]
fn oracle_agrees_with_analytic_distance_on_every_router_pair() {
    for (name, m) in preset_machines() {
        let topo = m.topology();
        let oracle = m.oracle().unwrap_or_else(|| panic!("{name}: no oracle"));
        let n = m.num_terminal_routers() as u32;
        assert_eq!(oracle.num_routers() as u32, n, "{name}");
        for a in 0..n {
            let row = oracle.row(a);
            for b in 0..n {
                let analytic = topo.distance(a, b);
                assert_eq!(
                    oracle.distance(a, b),
                    analytic,
                    "{name}: routers {a} -> {b}"
                );
                assert_eq!(u32::from(row[b as usize]), analytic, "{name}: row {a}[{b}]");
            }
        }
        // Rebuilding standalone gives the same table.
        let rebuilt = DistanceOracle::build(topo, usize::MAX).unwrap();
        for a in 0..n {
            assert_eq!(rebuilt.row(a), oracle.row(a), "{name}: row {a}");
        }
    }
}

#[test]
fn machine_hops_identical_with_and_without_oracle() {
    for (name, mut m) in preset_machines() {
        let with: Vec<u32> = (0..m.num_nodes() as u32)
            .flat_map(|a| (0..m.num_nodes() as u32).map(move |b| (a, b)))
            .map(|(a, b)| m.hops(a, b))
            .collect();
        m.set_oracle_threshold(0);
        assert!(m.oracle().is_none(), "{name}: threshold 0 must disable");
        let without: Vec<u32> = (0..m.num_nodes() as u32)
            .flat_map(|a| (0..m.num_nodes() as u32).map(move |b| (a, b)))
            .map(|(a, b)| m.hops(a, b))
            .collect();
        assert_eq!(with, without, "{name}");
    }
}

/// The engine fixture shared by the bit-identity tests.
fn fixture_tg() -> TaskGraph {
    TaskGraph::from_messages(
        24,
        (0..24u32).flat_map(|i| {
            [
                (i, (i + 1) % 24, 2.0 + f64::from(i % 5)),
                (i, (i + 7) % 24, 1.0),
            ]
        }),
        None,
    )
}

fn engine_machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("torus", MachineConfig::small(&[4, 4], 1, 4).build()),
        ("fattree", FatTreeConfig::small(4, 1, 4).build()),
        (
            "dragonfly",
            DragonflyConfig {
                procs_per_node: 4,
                ..DragonflyConfig::small(3, 3, 1)
            }
            .build(),
        ),
    ]
}

#[test]
fn oracle_backed_refinement_is_bit_identical_to_analytic() {
    let tg = fixture_tg();
    for (name, m_oracle) in engine_machines() {
        assert!(m_oracle.oracle().is_some(), "{name}");
        let mut m_analytic = m_oracle.clone();
        m_analytic.set_oracle_threshold(0);
        for seed in 0..4u64 {
            let alloc = Allocation::generate(&m_oracle, &AllocSpec::sparse(8, seed));
            // Same greedy start on both machines (itself a cross-check).
            let base_o = greedy_map(&tg, &m_oracle, &alloc, &GreedyConfig::default());
            let base_a = greedy_map(&tg, &m_analytic, &alloc, &GreedyConfig::default());
            assert_eq!(base_o, base_a, "{name} seed {seed}: greedy diverged");

            let mut wh_o = base_o.clone();
            let mut wh_a = base_o.clone();
            let out_o = wh_refine(
                &tg,
                &m_oracle,
                &alloc,
                &mut wh_o,
                &WhRefineConfig::default(),
            );
            let out_a = wh_refine(
                &tg,
                &m_analytic,
                &alloc,
                &mut wh_a,
                &WhRefineConfig::default(),
            );
            assert_eq!(wh_o, wh_a, "{name} seed {seed}: wh_refine mapping diverged");
            assert_eq!(
                out_o.to_bits(),
                out_a.to_bits(),
                "{name} seed {seed}: wh_refine WH diverged"
            );
            assert_eq!(
                weighted_hops(&tg, &m_oracle, &wh_o).to_bits(),
                weighted_hops(&tg, &m_analytic, &wh_a).to_bits(),
                "{name} seed {seed}: weighted_hops diverged"
            );

            let mut mc_o = base_o.clone();
            let mut mc_a = base_o.clone();
            let cong_o = congestion_refine(
                &tg,
                &m_oracle,
                &alloc,
                &mut mc_o,
                &CongRefineConfig::volume(),
            );
            let cong_a = congestion_refine(
                &tg,
                &m_analytic,
                &alloc,
                &mut mc_a,
                &CongRefineConfig::volume(),
            );
            assert_eq!(
                mc_o, mc_a,
                "{name} seed {seed}: cong_refine mapping diverged"
            );
            assert_eq!(
                cong_o, cong_a,
                "{name} seed {seed}: cong_refine MC/AC diverged"
            );
        }
    }
}

#[test]
fn oversize_machines_fall_back_without_a_table() {
    let mut m = MachineConfig::small(&[4, 4], 1, 1).build();
    m.set_oracle_threshold(15); // 16 routers > threshold
    assert!(m.oracle().is_none());
    assert!(m.dist_row(0).is_none());
    // The analytic path still serves everything.
    assert_eq!(m.hops(0, 1), 1);
    assert_eq!(m.diameter(), 4);
}
