//! Generality tests: the mapping algorithms on non-default machines —
//! meshes (no wraparound), 5-D tori, fat-trees, dragonflies,
//! heterogeneous node capacities and heterogeneous allocations.
//! Section III of the paper claims the WH-minimizing algorithms "can be
//! applied to various topologies"; these tests hold it to that.

use umpa::core::mapping::validate_mapping;
use umpa::prelude::*;

fn ring_tasks(n: u32, vol: f64) -> TaskGraph {
    TaskGraph::from_messages(n as usize, (0..n).map(|i| (i, (i + 1) % n, vol)), None)
}

#[test]
fn all_mappers_work_on_a_mesh() {
    let machine = MachineConfig::small_mesh(&[6, 6], 1, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 4));
    let tg = ring_tasks(16, 3.0);
    let cfg = PipelineConfig::default();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{} on mesh: {e}", kind.name()));
        let m = evaluate(&tg, &machine, &out.fine_mapping);
        let sum: f64 = m.msg_congestion.iter().sum();
        assert!(
            (m.th - sum).abs() < 1e-9,
            "{} mesh TH identity",
            kind.name()
        );
    }
}

/// Every mapper on a machine: feasibility + the TH/WH identities.
fn all_mappers_end_to_end(machine: &Machine, tasks: u32) {
    let nodes = (tasks as usize / 2).min(machine.num_nodes());
    let alloc = Allocation::generate(machine, &AllocSpec::sparse(nodes, 4));
    let tg = ring_tasks(tasks, 3.0);
    let cfg = PipelineConfig::default();
    let label = machine.topology().summary();
    for kind in MapperKind::all() {
        let out = map_tasks(&tg, machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{} on {label}: {e}", kind.name()));
        let m = evaluate(&tg, machine, &out.fine_mapping);
        let sum: f64 = m.msg_congestion.iter().sum();
        assert!(
            (m.th - sum).abs() < 1e-9,
            "{} {label}: TH identity",
            kind.name()
        );
        let vsum: f64 = m.vol_traffic.iter().sum();
        assert!(
            (m.wh - vsum).abs() < 1e-9 * (1.0 + m.wh),
            "{} {label}: WH identity",
            kind.name()
        );
    }
}

#[test]
fn all_mappers_work_on_a_fat_tree() {
    // k=4 testbed and the cloud cluster preset, both link modes.
    all_mappers_end_to_end(&FatTreeConfig::small(4, 2, 2).build(), 16);
    let mut cfg = FatTreeConfig::small(4, 1, 2);
    cfg.link_mode = LinkMode::Undirected;
    all_mappers_end_to_end(&cfg.build(), 12);
    all_mappers_end_to_end(&FatTreeConfig::cluster().build(), 64);
}

#[test]
fn all_mappers_work_on_a_dragonfly() {
    let mut small = DragonflyConfig::small(4, 3, 1);
    small.procs_per_node = 2;
    all_mappers_end_to_end(&small.build(), 16);
    let mut undirected = DragonflyConfig::small(3, 4, 2);
    undirected.procs_per_node = 2;
    undirected.link_mode = LinkMode::Undirected;
    all_mappers_end_to_end(&undirected.build(), 16);
    all_mappers_end_to_end(&DragonflyConfig::supercomputer().build(), 64);
}

#[test]
fn refinement_improves_on_hierarchical_topologies_too() {
    // UWH must not trail UG on WH, and UMC must not trail UG on MC,
    // on the new backends — the core quality guarantees stay intact.
    for machine in [FatTreeConfig::small(4, 2, 2).build(), {
        let mut d = DragonflyConfig::small(4, 4, 1);
        d.procs_per_node = 2;
        d.build()
    }] {
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 5));
        let tg = ring_tasks(16, 2.0);
        let cfg = PipelineConfig::default();
        let label = machine.topology().summary();
        let ug = map_tasks(&tg, &machine, &alloc, MapperKind::Greedy, &cfg);
        let uwh = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
        let umc = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyMc, &cfg);
        let m_ug = evaluate(&tg, &machine, &ug.fine_mapping);
        let m_uwh = evaluate(&tg, &machine, &uwh.fine_mapping);
        let m_umc = evaluate(&tg, &machine, &umc.fine_mapping);
        assert!(m_uwh.wh <= m_ug.wh + 1e-9, "{label}: UWH worse than UG");
        assert!(m_umc.mc <= m_ug.mc + 1e-9, "{label}: UMC worse than UG");
    }
}

#[test]
fn simulator_runs_on_hierarchical_topologies() {
    use umpa::netsim::des::{simulate, DesConfig};
    // (machine, stride that genuinely crosses pods / groups).
    let cases = [
        // k=4 fat-tree, 2 nodes per edge switch: stride 4 jumps pods.
        (FatTreeConfig::small(4, 2, 1).build(), 4u32),
        // 4 groups x 3 routers x 2 nodes = 24 nodes: stride 6 jumps a
        // whole group per task.
        (DragonflyConfig::small(4, 3, 2).build(), 6u32),
    ];
    for (machine, stride) in cases {
        let tg = ring_tasks(8, 50_000.0);
        let packed: Vec<u32> = (0..8).collect();
        let near = simulate(&machine, &tg, &packed, &DesConfig::default());
        assert!(near.makespan_us > 0.0);
        assert!(near.network_bytes > 0.0);
        let n = machine.num_nodes() as u32;
        let spread: Vec<u32> = (0..8u32).map(|i| (i * stride) % n).collect();
        assert_ne!(spread, packed, "stride must actually spread the ring");
        let far = simulate(&machine, &tg, &spread, &DesConfig::default());
        // Scattering bulky ring traffic across pods/groups moves every
        // message onto multi-hop shared paths: strictly more bytes on
        // the network and a longer makespan.
        assert!(
            far.network_bytes >= near.network_bytes,
            "{}",
            machine.topology().summary()
        );
        assert!(
            far.makespan_us > near.makespan_us,
            "{}: spread {} should exceed packed {}",
            machine.topology().summary(),
            far.makespan_us,
            near.makespan_us
        );
    }
}

#[test]
fn mesh_distances_penalize_corner_to_corner() {
    let mesh = MachineConfig::small_mesh(&[8, 8], 1, 1).build();
    let torus = MachineConfig::small(&[8, 8], 1, 1).build();
    let corner_a = 0u32;
    let corner_b = (mesh.num_nodes() - 1) as u32;
    assert_eq!(mesh.hops(corner_a, corner_b), 14);
    assert_eq!(torus.hops(corner_a, corner_b), 2);
}

#[test]
fn five_dimensional_torus_end_to_end() {
    let machine = MachineConfig::small(&[3, 3, 3, 2, 2], 1, 4).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(16, 6));
    let tg = ring_tasks(64, 2.0);
    let cfg = PipelineConfig::default();
    let ug = map_tasks(&tg, &machine, &alloc, MapperKind::Greedy, &cfg);
    let uwh = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
    validate_mapping(&tg, &alloc, &ug.fine_mapping).unwrap();
    validate_mapping(&tg, &alloc, &uwh.fine_mapping).unwrap();
    let wh_ug = evaluate(&tg, &machine, &ug.fine_mapping).wh;
    let wh_uwh = evaluate(&tg, &machine, &uwh.fine_mapping).wh;
    assert!(wh_uwh <= wh_ug + 1e-9);
}

#[test]
fn heterogeneous_node_capacities_flow_through_the_pipeline() {
    let machine = MachineConfig::small(&[4, 4], 1, 8).build();
    let mut alloc = Allocation::generate(&machine, &AllocSpec::contiguous(4));
    // One fat node, three thin ones: 8 + 4 + 2 + 2 = 16 procs.
    alloc.set_procs(vec![8, 4, 2, 2]);
    let tg = ring_tasks(16, 1.0);
    let cfg = PipelineConfig::default();
    for kind in [
        MapperKind::Def,
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
    ] {
        let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
        validate_mapping(&tg, &alloc, &out.fine_mapping)
            .unwrap_or_else(|e| panic!("{} heterogeneous: {e}", kind.name()));
    }
}

#[test]
fn undirected_link_mode_metrics_are_consistent() {
    let mut cfg = MachineConfig::small(&[6], 1, 1);
    cfg.link_mode = LinkMode::Undirected;
    let machine = cfg.build();
    let tg = TaskGraph::from_messages(2, [(0, 1, 2.0), (1, 0, 2.0)], None);
    let m = evaluate(&tg, &machine, &[0, 1]);
    // Opposing messages share the single undirected link: MMC = 2.
    assert_eq!(m.mmc, 2.0);
    assert_eq!(m.used_links, 1);
    let sum: f64 = m.msg_congestion.iter().sum();
    assert!((m.th - sum).abs() < 1e-9);
}

#[test]
fn contiguous_vs_sparse_allocations_change_def_quality() {
    let machine = MachineConfig::small(&[8, 8], 1, 1).build();
    let tg = ring_tasks(16, 1.0);
    let cfg = PipelineConfig::default();
    let cont = Allocation::generate(&machine, &AllocSpec::contiguous(16));
    let frag = Allocation::generate(
        &machine,
        &AllocSpec {
            num_nodes: 16,
            background_occupancy: 0.6,
            fragment_len: 2,
            ordering: NodeOrdering::Serpentine,
            seed: 3,
        },
    );
    let wh_cont = {
        let out = map_tasks(&tg, &machine, &cont, MapperKind::Def, &cfg);
        evaluate(&tg, &machine, &out.fine_mapping).wh
    };
    let wh_frag = {
        let out = map_tasks(&tg, &machine, &frag, MapperKind::Def, &cfg);
        evaluate(&tg, &machine, &out.fine_mapping).wh
    };
    // Fragmentation hurts the curve-following default placement — the
    // premise of the whole paper.
    assert!(
        wh_frag > wh_cont,
        "fragmented DEF WH {wh_frag} should exceed contiguous {wh_cont}"
    );
}
