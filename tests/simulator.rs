//! Behavioral tests of the network simulator — the substrate whose
//! fidelity the Figure 4/5 reproductions rest on.

use umpa::netsim::des::{simulate, DesConfig};
use umpa::netsim::prelude::*;
use umpa::prelude::*;

fn line(n: u32) -> Machine {
    MachineConfig::small(&[n], 1, 1).build()
}

#[test]
fn adding_a_message_never_speeds_things_up() {
    let m = line(8);
    let base: Vec<(u32, u32, f64)> = vec![(0, 1, 500.0), (2, 3, 700.0)];
    let tg1 = TaskGraph::from_messages(6, base.clone(), None);
    let mut more = base;
    more.push((4, 5, 900.0));
    let tg2 = TaskGraph::from_messages(6, more, None);
    let mapping: Vec<u32> = (0..6).collect();
    let t1 = simulate(&m, &tg1, &mapping, &DesConfig::default()).makespan_us;
    let t2 = simulate(&m, &tg2, &mapping, &DesConfig::default()).makespan_us;
    assert!(t2 >= t1);
}

#[test]
fn growing_a_message_never_speeds_things_up() {
    let m = line(8);
    let mapping = vec![0u32, 3];
    let mut last = 0.0;
    for vol in [10.0, 100.0, 1000.0, 10_000.0] {
        let tg = TaskGraph::from_messages(2, [(0, 1, vol)], None);
        let t = simulate(&m, &tg, &mapping, &DesConfig::default()).makespan_us;
        assert!(t > last, "volume {vol}: {t} vs {last}");
        last = t;
    }
}

#[test]
fn makespan_at_least_the_critical_path() {
    let m = line(8);
    let tg = TaskGraph::from_messages(2, [(0, 1, 4000.0)], None);
    let mapping = vec![0u32, 5]; // 3 hops via wraparound
    let cfg = DesConfig::default();
    let t = simulate(&m, &tg, &mapping, &cfg).makespan_us;
    let bytes = 4000.0 * 8.0;
    let lower = m.base_latency_us()
        + 3.0 * (bytes / (m.link_bandwidth(0) * 1000.0))
        + bytes / (m.nic_bw() * 1000.0);
    assert!(
        t >= lower,
        "makespan {t} below physical lower bound {lower}"
    );
}

#[test]
fn analytic_model_ranks_like_the_des() {
    // Across several mappings of the same pattern, the analytic bound
    // and the DES should agree on the ordering (Spearman-ish check).
    let m = MachineConfig::small(&[4, 4], 1, 1).build();
    let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 1) % 8, 20_000.0)), None);
    let mappings: Vec<Vec<u32>> = vec![
        (0..8).collect(),                // packed
        (0..8).map(|t| t * 2).collect(), // spread
        vec![0, 5, 10, 15, 3, 6, 9, 12], // scattered
    ];
    let cfg = DesConfig::default();
    let des: Vec<f64> = mappings
        .iter()
        .map(|mp| simulate(&m, &tg, mp, &cfg).makespan_us)
        .collect();
    let ana: Vec<f64> = mappings
        .iter()
        .map(|mp| analytic_comm_time(&m, &tg, mp, &cfg))
        .collect();
    // Same argmin and argmax.
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    assert_eq!(argmin(&des), argmin(&ana), "des {des:?} ana {ana:?}");
    assert_eq!(argmax(&des), argmax(&ana), "des {des:?} ana {ana:?}");
}

#[test]
fn slow_links_hurt_proportionally() {
    let mut cfg = MachineConfig::small(&[4, 4], 1, 1);
    cfg.bw_per_dim = vec![10.0, 1.0];
    cfg.nic_bw = 100.0; // keep endpoints out of the way of the link term
    let m = cfg.build();
    let tg = TaskGraph::from_messages(2, [(0, 1, 50_000.0)], None);
    // One hop along the fast dimension vs one along the slow one.
    let fast = simulate(&m, &tg, &[0, 1], &DesConfig::default()).makespan_us;
    let slow = simulate(&m, &tg, &[0, 4], &DesConfig::default()).makespan_us;
    assert!(
        slow > 3.0 * fast,
        "slow-dim route {slow} should dwarf fast-dim {fast}"
    );
}

#[test]
fn wormhole_helps_more_on_longer_routes() {
    let m = line(16);
    let tg = TaskGraph::from_messages(2, [(0, 1, 100_000.0)], None);
    let saf = DesConfig::default();
    let worm = DesConfig {
        packet_bytes: Some(100_000.0 * 8.0 / 16.0),
        ..DesConfig::default()
    };
    let gain_short = {
        let s = simulate(&m, &tg, &[0, 2], &saf).makespan_us;
        let w = simulate(&m, &tg, &[0, 2], &worm).makespan_us;
        s / w
    };
    let gain_long = {
        let s = simulate(&m, &tg, &[0, 8], &saf).makespan_us;
        let w = simulate(&m, &tg, &[0, 8], &worm).makespan_us;
        s / w
    };
    assert!(
        gain_long > gain_short,
        "pipelining gain should grow with hops: {gain_short} vs {gain_long}"
    );
}

#[test]
fn comm_only_repetitions_differ_under_noise_but_share_the_mean() {
    let m = line(8);
    let tg = TaskGraph::from_messages(4, [(0, 1, 800.0), (1, 2, 800.0), (2, 3, 800.0)], None);
    let mapping: Vec<u32> = (0..4).collect();
    let quiet = AppConfig {
        repetitions: 3,
        ..AppConfig::default()
    };
    let noisy = AppConfig {
        des: DesConfig {
            noise: 0.05,
            seed: 42,
            ..DesConfig::default()
        },
        repetitions: 8,
        ..AppConfig::default()
    };
    let q = comm_only_time(&m, &tg, &mapping, &quiet);
    let n = comm_only_time(&m, &tg, &mapping, &noisy);
    assert_eq!(q.std_us, 0.0);
    assert!(n.std_us > 0.0);
    assert!((n.mean_us - q.mean_us).abs() / q.mean_us < 0.10);
}

#[test]
fn metrics_link_loads_agree_with_netsim_reconstruction() {
    // Cross-check between the two link accountings in the workspace:
    // `umpa_core::metrics::evaluate` (volume traffic per channel, and
    // WH = Σ per-link volume when bandwidths are 1) and the loads
    // `umpa_netsim` reconstructs by routing every message — for the
    // same mapping, on every topology family, for both the direct
    // pipeline and the multilevel engine.
    use umpa::core::multilevel::MultilevelConfig;
    use umpa::core::pipeline::map_multilevel;
    use umpa::netsim::link_loads;

    let machines = vec![
        MachineConfig::small(&[4, 4], 1, 4).build(),
        umpa::topology::FatTreeConfig::small(4, 2, 4).build(),
        umpa::topology::DragonflyConfig {
            procs_per_node: 4,
            ..umpa::topology::DragonflyConfig::small(3, 3, 2)
        }
        .build(),
    ];
    let tg = TaskGraph::from_messages(
        64,
        (0..64u32).flat_map(|i| [(i, (i + 1) % 64, 4.0), (i, (i + 9) % 64, 1.5)]),
        Some(vec![0.25; 64]),
    );
    let cfg = PipelineConfig {
        multilevel: MultilevelConfig {
            coarsen_min: 8,
            coarsen_factor: 1.5,
            ..MultilevelConfig::default()
        },
        ..PipelineConfig::default()
    };
    let des = DesConfig::default();
    for m in &machines {
        let alloc = Allocation::generate(m, &AllocSpec::sparse(8, 5));
        let direct = map_tasks(&tg, m, &alloc, MapperKind::GreedyWh, &cfg);
        let ml = map_multilevel(&tg, m, &alloc, MapperKind::GreedyWh, &cfg);
        for (label, mapping) in [
            ("direct", &direct.fine_mapping),
            ("multilevel", &ml.fine_mapping),
        ] {
            let report = evaluate(&tg, m, mapping);
            let loads = link_loads(m, &tg, mapping, &des);
            assert_eq!(loads.len(), report.vol_traffic.len(), "{label}");
            let bytes_per_word = des.bytes_per_word * des.scale;
            for (l, (&bytes, &vol)) in loads.iter().zip(report.vol_traffic.iter()).enumerate() {
                assert!(
                    (bytes - vol * bytes_per_word).abs() <= 1e-9 * (1.0 + bytes.abs()),
                    "{label} {}: link {l} loads disagree: netsim {bytes} vs metrics {vol}",
                    m.topology().summary()
                );
            }
            // WH identity: unit bandwidths on these presets make WH the
            // sum of per-link volume traffic.
            let total: f64 = report.vol_traffic.iter().sum();
            assert!(
                (report.wh - total).abs() <= 1e-9 * (1.0 + report.wh),
                "{label}: WH {} vs summed link volume {total}",
                report.wh
            );
        }
    }
}
