//! The always-on mapping service: bounded admission, a deadline
//! degradation ladder, and a churn-drift supervisor in one shell.
//!
//! A 128-task resident job runs on a sparse 96-node allocation of a
//! 4×4×4 torus while a seeded stream of map requests and churn events
//! plays against the service: requests flow through the bounded
//! admission queue (overload is shed explicitly, never buffered
//! unboundedly), tight deadlines step the ladder down
//! `cong_refine → wh_refine → greedy-only → projection`, and every
//! churn event triggers an incremental repair with the drift
//! supervisor watching the live mapping's quality against a
//! from-scratch baseline.
//!
//! ```bash
//! cargo run --release --example service
//! ```

use std::sync::Arc;
use std::time::Instant;

use umpa::core::greedy::weighted_hops;
use umpa::core::{greedy_map_into, wh_refine_scratch, MapperScratch};
use umpa::prelude::*;

/// Ring + chords with skewed weights — structure to lose, so churn
/// drift shows up in WH.
fn ring_with_chords(n: u32, seed: u64) -> TaskGraph {
    let n = n.max(4);
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

fn main() {
    // 1. Machine + allocation: a 4×4×4 torus (128 nodes, 2 cores
    //    each), 96 nodes sparsely allocated — enough headroom that the
    //    resident job survives the churn generator's removal cap.
    let machine = MachineConfig::small(&[4, 4, 4], 2, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(96, 7));

    // 2. The service: two workers behind a 16-deep admission queue;
    //    past depth 8 the ladder pre-sheds one rung. Durability is on:
    //    churn and job transitions are journaled (write-ahead) with
    //    periodic checksummed snapshots — map requests never touch it.
    let journal_dir = std::env::temp_dir().join("umpa-service-example");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let svc = MappingService::new(
        machine,
        alloc,
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            pressure_depth: 8,
            durability: Some(DurabilityConfig::new(&journal_dir)),
            ..ServiceConfig::default()
        },
    );
    let resident = Arc::new(ring_with_chords(128, 3));
    let wh0 = svc.install_job(Arc::clone(&resident));
    println!(
        "resident job installed: {} tasks, initial WH {:.0}\n",
        resident.num_tasks(),
        wh0
    );

    // 3. The load: a seeded request/churn stream with exponential
    //    inter-arrival gaps; deadlines cycle unbounded → comfortable →
    //    tight so every rung of the ladder gets exercised.
    let spec = LoadSpec {
        churn_fraction: 0.2,
        tasks: (32, 96),
        ..LoadSpec::new(400, 42)
    };
    let stream = svc.with_state(|m, a| load_sequence(m, a, &spec));
    let deadlines: [u64; 3] = [u64::MAX, 2_000_000, 150_000];
    println!(
        "replaying {} events (~20% churn, mean gap {} µs) ...",
        stream.len(),
        spec.mean_gap_ns / 1_000
    );

    let mut lat_us: Vec<f64> = Vec::new();
    let mut pending: Vec<MapTicket> = Vec::new();
    let mut repair_errors = 0usize;
    let (mut reqs, mut churns) = (0usize, 0usize);
    for ev in &stream {
        // Pace arrivals, yielding the core to the workers.
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ev.gap_ns() {
            std::thread::yield_now();
        }
        match ev {
            LoadEvent::Churn { event, .. } => {
                churns += 1;
                let report = svc.apply_churn(std::slice::from_ref(event));
                if report.error.is_some() {
                    repair_errors += 1;
                }
            }
            LoadEvent::Request { tasks, seed, .. } => {
                let job = MapJob::new(Arc::new(ring_with_chords(*tasks, *seed)))
                    .with_deadline_ns(deadlines[reqs % deadlines.len()]);
                reqs += 1;
                if let Submit::Accepted(ticket) = svc.submit_map(job) {
                    pending.push(ticket);
                }
                if pending.len() >= 24 {
                    for t in pending.drain(..) {
                        if let Ok(reply) = t.wait() {
                            lat_us.push(reply.total_ns as f64 / 1_000.0);
                        }
                    }
                }
            }
        }
    }
    for t in pending.drain(..) {
        if let Ok(reply) = t.wait() {
            lat_us.push(reply.total_ns as f64 / 1_000.0);
        }
    }

    // 4. Settle any pending repair and force one supervisor pass, then
    //    compare the live mapping against mapping the *final* machine
    //    state from scratch.
    svc.retry_now();
    svc.polish_now();
    let live_wh = svc.live_wh();
    let scratch_wh = svc.with_state(|m, a| {
        let mut scratch = MapperScratch::new();
        let mut mapping = Vec::new();
        greedy_map_into(
            &resident,
            m,
            a,
            &Default::default(),
            &mut scratch.greedy,
            &mut mapping,
        );
        wh_refine_scratch(
            &resident,
            m,
            a,
            &mut mapping,
            &Default::default(),
            &mut scratch.wh,
        );
        weighted_hops(&resident, m, &mapping)
    });
    let snap = svc.shutdown();

    // 5. The report: admission, the ladder, repairs, and drift.
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\nadmission: {} requests, {} accepted, {} shed (rate {:.3}), max queue depth {}",
        reqs,
        snap.accepted,
        snap.rejected,
        snap.shed_rate(),
        snap.max_queue_depth
    );
    if !lat_us.is_empty() {
        println!(
            "reply latency: p50 {:.0} µs, p99 {:.0} µs ({} deadline misses, {} panics caught)",
            lat_us[lat_us.len() / 2],
            lat_us[(lat_us.len() * 99 / 100).min(lat_us.len() - 1)],
            snap.deadline_misses,
            snap.panics
        );
    }
    let rungs = snap.rung_counts();
    println!(
        "ladder: {} {}, {} {}, {} {}, {} {}",
        rungs[0].1,
        rungs[0].0,
        rungs[1].1,
        rungs[1].0,
        rungs[2].1,
        rungs[2].0,
        rungs[3].1,
        rungs[3].0
    );
    println!(
        "churn: {} events, {} repairs, {} infeasible ({} retries, {} exhausted, {} typed errors)",
        churns, snap.repairs, snap.infeasible, snap.retries, snap.retry_exhausted, repair_errors
    );
    println!(
        "supervisor: {} drift checks, {} polishes, {} baseline adoptions",
        snap.drift_checks, snap.polishes, snap.baseline_adoptions
    );
    println!(
        "repair drift: {} repairs, {} tasks displaced total, ΔWH {:+.0} cumulative ({:+.0} last)",
        snap.drift_repairs,
        snap.drift_displaced_total,
        snap.drift_wh_delta_total,
        snap.drift_wh_last
    );
    if snap.journal_appends > 0 || snap.journal_errors > 0 {
        println!(
            "durability: {} frames ({} B), {} snapshots, {} journal errors",
            snap.journal_appends, snap.journal_bytes, snap.snapshots_written, snap.journal_errors
        );
    }
    match live_wh {
        Some(live) => println!(
            "live WH {:.0} vs from-scratch {:.0} on the final machine state ({:+.1}%)",
            live,
            scratch_wh,
            (live / scratch_wh - 1.0) * 100.0
        ),
        None => println!("resident job still partially placed after the stream"),
    }
}
