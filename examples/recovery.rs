//! Crash-safe service state: kill the journal mid-stream, recover
//! from disk, and verify the resident job came back bit-identical.
//!
//! A durable service (write-ahead churn journal + checksummed
//! snapshots, DESIGN.md §18) runs a resident job through a seeded
//! churn stream with a crash injected *inside* a frame write — the
//! torn tail a real `kill -9` leaves behind. `MappingService::recover`
//! then loads the newest valid snapshot, truncates the torn tail,
//! replays the surviving frames, and the example checks the recovered
//! mapping, drift counters and fault state against an uninterrupted
//! reference run over the same surviving prefix — exact to the bit.
//!
//! ```bash
//! cargo run --release --example recovery
//! ```

use std::sync::Arc;

use umpa::matgen::churn::{churn_sequence, ChurnSpec};
use umpa::prelude::*;
use umpa::service::{CrashPoint, CrashSwitch};

/// Ring + chords with skewed weights.
fn ring_with_chords(n: u32, seed: u64) -> TaskGraph {
    let n = n.max(4);
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

fn main() {
    let machine = MachineConfig::small(&[4, 4, 4], 2, 2).build();
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(48, 7));
    let resident = Arc::new(ring_with_chords(64, 3));
    let events = churn_sequence(&machine, &alloc, &ChurnSpec::new(24, 42));

    let dir = std::env::temp_dir().join("umpa-recovery-example");
    let _ = std::fs::remove_dir_all(&dir);
    let durable = |crash: Option<CrashSwitch>| ServiceConfig {
        workers: 0,
        durability: Some(DurabilityConfig {
            snapshot_every: 8,
            crash,
            ..DurabilityConfig::new(&dir)
        }),
        ..ServiceConfig::default()
    };

    // 1. Run the durable service into a crash: the switch kills the
    //    sink halfway through the 18th frame — a torn tail on disk,
    //    exactly what pulling the plug leaves behind.
    let switch = CrashSwitch::new();
    switch.arm(CrashPoint::MidFrame, 18);
    let svc = MappingService::new(
        machine.clone(),
        alloc.clone(),
        durable(Some(switch.clone())),
    );
    svc.install_job(Arc::clone(&resident));
    for ev in &events {
        svc.apply_churn(std::slice::from_ref(ev));
    }
    let stats = svc.shutdown();
    println!(
        "crashed run: {} of {} ops journaled before the plug was pulled ({} write errors absorbed)",
        stats.journal_appends,
        events.len() + 1,
        stats.journal_errors
    );

    // 2. Recover from the durability directory alone.
    let (recovered, report) =
        MappingService::recover(machine.clone(), alloc.clone(), durable(None))
            .expect("recovery must handle a torn tail");
    println!(
        "recovered: snapshot {:?} (seq {}), {} frames replayed, {} torn bytes truncated, history length {}",
        report.snapshot_source,
        report.snapshot_seq,
        report.frames_replayed,
        report.truncated_bytes,
        report.last_seq
    );

    // 3. Reference: an uninterrupted in-memory run over the surviving
    //    prefix (frame 1 is the install; frame k+1 is events[k]).
    let reference = MappingService::new(
        machine,
        alloc,
        ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        },
    );
    reference.install_job(Arc::clone(&resident));
    let surviving = (report.last_seq - 1) as usize;
    for ev in &events[..surviving] {
        reference.apply_churn(std::slice::from_ref(ev));
    }

    let same_mapping = recovered.live_mapping() == reference.live_mapping();
    let same_wh = recovered.live_wh().map(f64::to_bits) == reference.live_wh().map(f64::to_bits);
    let same_fault = recovered.with_state(|m, _| m.fault_snapshot())
        == reference.with_state(|m, _| m.fault_snapshot());
    println!(
        "bit-identity vs uninterrupted run over {} surviving ops: mapping {}, WH bits {}, fault state {}",
        surviving,
        if same_mapping { "identical" } else { "DIVERGED" },
        if same_wh { "identical" } else { "DIVERGED" },
        if same_fault { "identical" } else { "DIVERGED" },
    );
    assert!(same_mapping && same_wh && same_fault);

    // 4. The recovered service is live: finish the stream on it.
    for ev in &events[surviving..] {
        recovered.apply_churn(std::slice::from_ref(ev));
    }
    println!(
        "recovered service finished the remaining {} ops; live WH {:.0}",
        events.len() - surviving,
        recovered.live_wh().unwrap_or(f64::NAN)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
