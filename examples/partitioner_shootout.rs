//! Figure 1 in miniature: run all seven partitioner presets on one
//! matrix and print the four partition quality metrics side by side.
//!
//! ```bash
//! cargo run --release --example partitioner_shootout
//! ```

use umpa::matgen::gen::{stencil2d, Stencil2D};
use umpa::matgen::spmv::{partition_loads, spmv_task_graph, CommStats};
use umpa::prelude::*;

fn main() {
    let a = stencil2d(120, 120, Stencil2D::NinePoint);
    let parts = 64;
    println!(
        "matrix: {}x{} 9-point grid, {} nnz; partitioning into {parts} parts\n",
        120,
        120,
        a.nnz()
    );
    println!(
        "{:>8} {:>8} {:>6} {:>8} {:>6} {:>8}",
        "preset", "TV", "TM", "MSV", "MSM", "imbal"
    );
    for kind in PartitionerKind::all() {
        let part = kind.partition_matrix(&a, parts, 17);
        let tg = spmv_task_graph(&a, &part, parts);
        let stats = CommStats::from_task_graph(&tg, &partition_loads(&a, &part, parts));
        println!(
            "{:>8} {:>8.0} {:>6} {:>8.0} {:>6} {:>8.3}",
            kind.name(),
            stats.tv,
            stats.tm,
            stats.msv,
            stats.msm,
            stats.imbalance
        );
    }
    println!(
        "\nPATOH/METIS chase TV; UMPA_MV chases MSV; UMPA_MM chases MSM;\n\
         UMPA_TM chases TM; SCOTCH/KAFFPA only minimize edge cut."
    );
}
