//! Map a task graph 10–100× larger than the machine with the
//! multilevel coarsen–map–refine engine.
//!
//! Generates a 3-D stencil halo-exchange pattern (10⁵ tasks by
//! default, `--tasks 1000000` for the million-task run), allocates most
//! of the Hopper-preset torus, and runs `map_multilevel` with the
//! `UWH` mapper — the workload the direct pipeline's phase-1
//! partitioner cannot touch at this scale.
//!
//! ```bash
//! cargo run --release --example large_graph            # 10^5 tasks
//! cargo run --release --example large_graph -- --tasks 1000000
//! ```

use std::time::Instant;

use umpa::core::multilevel::multilevel_map_into;
use umpa::core::scratch::MapperScratch;
use umpa::matgen::taskgen::{stencil3d_tasks, total_weight_for};
use umpa::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tasks: usize = args
        .windows(2)
        .find(|w| w[0] == "--tasks")
        .map(|w| w[1].parse().expect("--tasks wants a number"))
        .unwrap_or(100_000);

    // The paper's machine: 17×8×24 Gemini torus, 6528 nodes. Allocate
    // 80 % of it the way a busy scheduler would.
    let machine = MachineConfig::hopper().build();
    let alloc = Allocation::generate(
        &machine,
        &AllocSpec::sparse(machine.num_nodes() * 8 / 10, 42),
    );
    println!(
        "machine: {} ({} nodes); allocated {} nodes / {} procs",
        machine.topology().summary(),
        machine.num_nodes(),
        alloc.num_nodes(),
        alloc.total_procs()
    );

    // A near-cubic 3-D stencil with `tasks` cells, filling half the
    // allocation's processor capacity (the fill factor is what the
    // capacity-aware matching coarsens into — see DESIGN.md §12).
    let side = (tasks as f64).cbrt().round() as usize;
    let (nx, ny) = (side, side);
    let nz = tasks.div_ceil(nx * ny);
    let t0 = Instant::now();
    let tg = stencil3d_tasks(nx, ny, nz, 8.0, 2.0, total_weight_for(&alloc, 0.5));
    println!(
        "task graph: {}×{}×{} stencil, {} tasks, {} messages (generated in {:.2?})",
        nx,
        ny,
        nz,
        tg.num_tasks(),
        tg.num_messages(),
        t0.elapsed()
    );

    // Map it. The engine coarsens by capacity-aware heavy-edge
    // matching, maps the coarsest graph with greedy + WH refinement,
    // and refines on the way back up.
    let cfg = PipelineConfig::default();
    let mut scratch = MapperScratch::new();
    let mut mapping = Vec::new();
    let t1 = Instant::now();
    let stats = multilevel_map_into(
        &tg,
        &machine,
        &alloc,
        MapperKind::GreedyWh,
        &cfg,
        &mut scratch,
        &mut mapping,
    );
    let elapsed = t1.elapsed();
    println!(
        "mapped in {elapsed:.2?}: {} hierarchy levels, coarsest graph {} vertices",
        stats.levels, stats.coarsest_tasks
    );

    umpa::core::validate_mapping(&tg, &alloc, &mapping).expect("mapping must be feasible");
    let report = evaluate(&tg, &machine, &mapping);
    println!(
        "metrics: TH {:.3e}  WH {:.3e}  MMC {:.0}  MC {:.1}",
        report.th, report.wh, report.mmc, report.mc
    );
    println!(
        "  avg hops per message: {:.2} (diameter {})",
        report.th / tg.num_messages() as f64,
        machine.diameter()
    );
}
