//! End-to-end SpMV campaign: generate a cage-like matrix, partition it
//! with two partitioner presets, map with every algorithm, and simulate
//! 100 SpMV iterations on the modelled Hopper — the workflow behind
//! Figure 5.
//!
//! ```bash
//! cargo run --release --example spmv_cluster
//! ```

use umpa::matgen::dataset;
use umpa::matgen::spmv::{partition_loads, spmv_task_graph};
use umpa::netsim::prelude::*;
use umpa::prelude::*;

fn main() {
    let machine = MachineConfig::hopper().build();
    let parts = 256; // MPI processes
    let nodes = parts / machine.procs_per_node() as usize;
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 42));
    println!(
        "machine: {}, {} nodes allocated for {} processes",
        machine.topology().summary(),
        nodes,
        parts
    );

    let a = dataset::cage15_like(Scale::Tiny);
    println!(
        "matrix: {} rows, {} nnz ({:.1} per row)",
        a.nrows(),
        a.nnz(),
        a.avg_row_nnz()
    );

    let cfg = PipelineConfig::default();
    let app = AppConfig {
        des: DesConfig {
            noise: 0.02,
            seed: 1,
            ..DesConfig::default()
        },
        repetitions: 3,
        ..AppConfig::default()
    };

    for partitioner in [PartitionerKind::Patoh, PartitionerKind::UmpaTM] {
        let part = partitioner.partition_matrix(&a, parts, 1);
        let tg = spmv_task_graph(&a, &part, parts);
        let loads = partition_loads(&a, &part, parts);
        println!(
            "\npartitioner {}: TV = {:.0} words, {} messages",
            partitioner.name(),
            tg.total_volume(),
            tg.num_messages()
        );
        println!(
            "{:>6} {:>12} {:>10} {:>8}",
            "mapper", "time/iter", "TH", "MC"
        );
        let mut def_time = None;
        for kind in MapperKind::all() {
            let out = map_tasks(&tg, &machine, &alloc, kind, &cfg);
            let m = evaluate(&tg, &machine, &out.fine_mapping);
            let t = spmv_time(&machine, &tg, &out.fine_mapping, &loads, 100, &app);
            let per_iter = t.mean_us / 100.0;
            let base = *def_time.get_or_insert(per_iter);
            println!(
                "{:>6} {:>9.1} µs {:>10.0} {:>8.2}  ({:.2}x DEF)",
                kind.name(),
                per_iter,
                m.th,
                m.mc,
                per_iter / base
            );
        }
    }
}
