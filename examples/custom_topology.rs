//! Beyond Hopper: the WH-minimizing algorithms only need hop distances,
//! so they generalize to any torus. This example maps the same workload
//! onto a 3-D Hopper-style torus and a BlueGene/Q-style 5-D torus and
//! compares dilation.
//!
//! ```bash
//! cargo run --release --example custom_topology
//! ```

use umpa::prelude::*;

fn workload() -> TaskGraph {
    // A 3-D 4x4x4 stencil communication pattern (64 tasks).
    let idx = |x: u32, y: u32, z: u32| z * 16 + y * 4 + x;
    let mut msgs = Vec::new();
    for z in 0..4u32 {
        for y in 0..4u32 {
            for x in 0..4u32 {
                let t = idx(x, y, z);
                let mut link = |other: u32| {
                    msgs.push((t, other, 4.0));
                    msgs.push((other, t, 4.0));
                };
                if x + 1 < 4 {
                    link(idx(x + 1, y, z));
                }
                if y + 1 < 4 {
                    link(idx(x, y + 1, z));
                }
                if z + 1 < 4 {
                    link(idx(x, y, z + 1));
                }
            }
        }
    }
    TaskGraph::from_messages(64, msgs, None)
}

fn run(label: &str, cfg: MachineConfig) {
    let machine = cfg.build();
    let nodes = 64 / machine.procs_per_node() as usize;
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 9));
    let tasks = workload();
    let pipeline = PipelineConfig::default();
    println!(
        "\n{label}: {:?} torus, diameter {} hops, {} nodes allocated",
        machine.torus().dims(),
        machine.diameter(),
        nodes
    );
    for kind in [MapperKind::Def, MapperKind::Greedy, MapperKind::GreedyWh] {
        let out = map_tasks(&tasks, &machine, &alloc, kind, &pipeline);
        let m = evaluate(&tasks, &machine, &out.fine_mapping);
        println!(
            "  {:>4}: TH = {:>5.0}  WH = {:>6.0}  avg dilation = {:.2} hops/message",
            kind.name(),
            m.th,
            m.wh,
            m.th / tasks.num_messages() as f64
        );
    }
}

fn main() {
    // Hopper-style 3-D torus (shrunk), 2 nodes/router, 4 cores.
    let mut hopper = MachineConfig::small(&[6, 4, 8], 2, 4);
    hopper.bw_per_dim = vec![9.375, 4.68, 9.375];
    run("3-D Cray-style", hopper);

    // BlueGene/Q-style 5-D torus, 1 node/router, 16 cores.
    let bgq = MachineConfig::small(&[4, 4, 4, 2, 2], 1, 16);
    run("5-D BlueGene-style", bgq);
}
