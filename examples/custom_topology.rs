//! Beyond Hopper: the mapping algorithms run on any [`Topology`]
//! backend — tori/meshes of any dimension, 3-level fat-trees (cloud
//! clusters) and dragonflies (Aries/Slingshot-style supercomputers).
//! This example maps the same 3-D stencil workload onto one machine of
//! each family and compares dilation and congestion.
//!
//! ```bash
//! cargo run --release --example custom_topology
//! ```

use umpa::prelude::*;

fn workload() -> TaskGraph {
    // A 3-D 4x4x4 stencil communication pattern (64 tasks).
    let idx = |x: u32, y: u32, z: u32| z * 16 + y * 4 + x;
    let mut msgs = Vec::new();
    for z in 0..4u32 {
        for y in 0..4u32 {
            for x in 0..4u32 {
                let t = idx(x, y, z);
                let mut link = |other: u32| {
                    msgs.push((t, other, 4.0));
                    msgs.push((other, t, 4.0));
                };
                if x + 1 < 4 {
                    link(idx(x + 1, y, z));
                }
                if y + 1 < 4 {
                    link(idx(x, y + 1, z));
                }
                if z + 1 < 4 {
                    link(idx(x, y, z + 1));
                }
            }
        }
    }
    TaskGraph::from_messages(64, msgs, None)
}

fn run(label: &str, machine: Machine) {
    let nodes = 64 / machine.procs_per_node() as usize;
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 9));
    let tasks = workload();
    let pipeline = PipelineConfig::default();
    println!(
        "\n{label}: {}, diameter {} hops, {} nodes allocated",
        machine.topology().summary(),
        machine.diameter(),
        nodes
    );
    for kind in [
        MapperKind::Def,
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
    ] {
        let out = map_tasks(&tasks, &machine, &alloc, kind, &pipeline);
        let m = evaluate(&tasks, &machine, &out.fine_mapping);
        println!(
            "  {:>4}: TH = {:>5.0}  WH = {:>6.0}  MC = {:>6.1}  avg dilation = {:.2} hops/message",
            kind.name(),
            m.th,
            m.wh,
            m.mc,
            m.th / tasks.num_messages() as f64
        );
    }

    // The UMC mapper's congestion refinement serves static routes from
    // the machine's RouteCache (lazily-built link-id slices; see
    // DESIGN.md §13). Like the distance oracle's
    // `set_oracle_threshold`, `set_route_cache_threshold(0)` disables
    // the memo and falls back to the analytic route emitters —
    // bit-identically, just slower per probe.
    let mut analytic = machine.clone();
    analytic.set_route_cache_threshold(0);
    let cached = map_tasks(&tasks, &machine, &alloc, MapperKind::GreedyMc, &pipeline);
    let fallback = map_tasks(&tasks, &analytic, &alloc, MapperKind::GreedyMc, &pipeline);
    assert_eq!(
        cached.fine_mapping, fallback.fine_mapping,
        "route cache must not change any mapping"
    );
    if let Some(cache) = machine.route_cache() {
        println!(
            "  route cache: {} rows built on demand, {:.1} KiB (analytic fallback verified identical)",
            cache.built_rows(),
            cache.size_bytes() as f64 / 1024.0
        );
    }
}

fn main() {
    // Hopper-style 3-D torus (shrunk), 2 nodes/router, 4 cores.
    let mut hopper = MachineConfig::small(&[6, 4, 8], 2, 4);
    hopper.bw_per_dim = vec![9.375, 4.68, 9.375];
    run("3-D Cray-style", hopper.build());

    // BlueGene/Q-style 5-D torus, 1 node/router, 16 cores.
    run(
        "5-D BlueGene-style",
        MachineConfig::small(&[4, 4, 4, 2, 2], 1, 16).build(),
    );

    // Cloud-style k=8 fat-tree: 32 racks of 4 hosts, 16 cores each,
    // 2:1 oversubscribed core.
    run("Fat-tree cluster", FatTreeConfig::cluster().build());

    // Smaller fat-tree with unit bandwidths for comparison.
    run(
        "Fat-tree k=4 testbed",
        FatTreeConfig::small(4, 2, 4).build(),
    );

    // Dragonfly supercomputer: 9 groups x 16 routers, Aries-like
    // bandwidths.
    run(
        "Dragonfly supercomputer",
        DragonflyConfig::supercomputer().build(),
    );

    // Small dragonfly testbed.
    run(
        "Dragonfly testbed",
        DragonflyConfig {
            procs_per_node: 4,
            ..DragonflyConfig::small(4, 4, 1)
        }
        .build(),
    );
}
