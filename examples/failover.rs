//! Failover: survive node failures and link degradation without
//! re-mapping the whole job.
//!
//! A 512-task halo-exchange application runs on a sparse 320-node
//! allocation of an 8×8×4 torus. Nodes then start failing (and coming
//! back), a link browns out, and finally a link dies outright. Each
//! time, `remap_incremental` repairs just the damaged neighborhood —
//! the example times every repair and compares the p50/p99 against
//! mapping the job from scratch.
//!
//! ```bash
//! cargo run --release --example failover
//! ```

use std::time::Instant;

use umpa::core::greedy::weighted_hops;
use umpa::core::{greedy_map_into, wh_refine_scratch, GreedyConfig, WhRefineConfig};
use umpa::prelude::*;

fn main() {
    // 1. Machine + allocation: an 8×8×4 torus (2 nodes per router,
    //    2 cores each), with 320 nodes scattered across it by a busy
    //    scheduler.
    let mut machine = MachineConfig::small(&[8, 8, 4], 2, 2).build();
    let mut alloc = Allocation::generate(&machine, &AllocSpec::sparse(320, 7));

    // 2. Application: 512 MPI tasks in a 3-D halo-exchange pattern.
    let side = 8u32;
    let idx = |x: u32, y: u32, z: u32| (z * side + y) * side + x;
    let mut messages = Vec::new();
    for z in 0..side {
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    messages.push((idx(x, y, z), idx(x + 1, y, z), 8.0));
                    messages.push((idx(x + 1, y, z), idx(x, y, z), 8.0));
                }
                if y + 1 < side {
                    messages.push((idx(x, y, z), idx(x, y + 1, z), 8.0));
                    messages.push((idx(x, y + 1, z), idx(x, y, z), 8.0));
                }
                if z + 1 < side {
                    messages.push((idx(x, y, z), idx(x, y, z + 1), 8.0));
                    messages.push((idx(x, y, z + 1), idx(x, y, z), 8.0));
                }
            }
        }
    }
    let tasks = TaskGraph::from_messages(512, messages, None);

    // 3. Initial mapping: greedy + WH refinement (the full re-map this
    //    example races against).
    let greedy_cfg = GreedyConfig::default();
    let wh_cfg = WhRefineConfig::default();
    let mut scratch = MapperScratch::new();
    let mut mapping: Vec<u32> = Vec::new();
    let t = Instant::now();
    greedy_map_into(
        &tasks,
        &machine,
        &alloc,
        &greedy_cfg,
        &mut scratch.greedy,
        &mut mapping,
    );
    wh_refine_scratch(
        &tasks,
        &machine,
        &alloc,
        &mut mapping,
        &wh_cfg,
        &mut scratch.wh,
    );
    let full_map_us = t.elapsed().as_secs_f64() * 1e6;
    let initial_wh = weighted_hops(&tasks, &machine, &mapping);
    println!(
        "initial map: {} tasks on {} nodes, WH {:.0} ({:.0} µs from scratch)\n",
        tasks.num_tasks(),
        alloc.num_nodes(),
        initial_wh,
        full_map_us
    );

    // 4. Node churn: a seeded stream of failures and re-additions, one
    //    incremental repair per event.
    let spec = ChurnSpec::nodes_only(40, 99);
    let events = churn_sequence(&machine, &alloc, &spec);
    let cfg = RemapConfig::default();
    let mut repair_us: Vec<f64> = Vec::new();
    println!(
        "{:>3}  {:>22}  {:>9}  {:>8}  {:>8}",
        "ev", "event", "displaced", "WH", "µs"
    );
    for (i, ev) in events.iter().enumerate() {
        let t = Instant::now();
        let outcome = remap_incremental(
            &tasks,
            &mut machine,
            &mut alloc,
            &mut mapping,
            std::slice::from_ref(ev),
            &cfg,
            &mut scratch,
        );
        let us = t.elapsed().as_secs_f64() * 1e6;
        repair_us.push(us);
        let label = match ev {
            ChurnEvent::NodeFailed { .. } => "node failed".to_string(),
            ChurnEvent::NodesRemoved { nodes } => format!("{} nodes reclaimed", nodes.len()),
            ChurnEvent::NodesAdded { nodes } => format!("{} nodes returned", nodes.len()),
            ChurnEvent::LinkDegraded { factor, .. } => format!("link at {factor:.2}x"),
        };
        match outcome {
            RemapOutcome::Repaired(stats) => println!(
                "{:>3}  {:>22}  {:>9}  {:>8.0}  {:>8.0}",
                i,
                label,
                stats.displaced,
                weighted_hops(&tasks, &machine, &mapping),
                us
            ),
            RemapOutcome::Infeasible { unplaced } => println!(
                "{:>3}  {:>22}  {:>9}  {:>8}  {:>8.0}   INFEASIBLE ({} unplaced)",
                i,
                label,
                "-",
                "-",
                us,
                unplaced.len()
            ),
        }
    }

    // 5. Link trouble: a brown-out keeps routes but reweights costs; a
    //    hard failure forces the masked-topology rebuild (the one
    //    expensive, cold-path repair) and routes around the dead link.
    for (factor, what) in [(0.5, "brown-out (0.5x bandwidth)"), (0.0, "hard failure")] {
        let ev = ChurnEvent::LinkDegraded { link: 0, factor };
        let t = Instant::now();
        let outcome = remap_incremental(
            &tasks,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ev],
            &cfg,
            &mut scratch,
        );
        let us = t.elapsed().as_secs_f64() * 1e6;
        println!(
            "\nlink 0 {}: repaired={} in {:.0} µs (WH {:.0})",
            what,
            outcome.is_repaired(),
            us,
            weighted_hops(&tasks, &machine, &mapping)
        );
    }
    let ev = ChurnEvent::LinkDegraded {
        link: 0,
        factor: 1.0,
    };
    ev.apply(&mut machine, &mut alloc);

    // 6. The headline comparison: incremental repair vs full re-map.
    repair_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = repair_us[repair_us.len() / 2];
    let p99 = repair_us[(repair_us.len() * 99 / 100).min(repair_us.len() - 1)];
    let t = Instant::now();
    greedy_map_into(
        &tasks,
        &machine,
        &alloc,
        &greedy_cfg,
        &mut scratch.greedy,
        &mut mapping,
    );
    wh_refine_scratch(
        &tasks,
        &machine,
        &alloc,
        &mut mapping,
        &wh_cfg,
        &mut scratch.wh,
    );
    let full_us = t.elapsed().as_secs_f64() * 1e6;
    println!(
        "\nrepair latency over {} node-churn events: p50 {:.0} µs, p99 {:.0} µs",
        repair_us.len(),
        p50,
        p99
    );
    println!(
        "full re-map (greedy + WH): {:.0} µs → p99 repair is {:.1}x faster",
        full_us,
        full_us / p99
    );
}
