//! The paper's communication-only experiment in miniature (Figure 4):
//! an rgg-like pattern with scaled message sizes, where all transfers
//! start at once and the makespan is pure communication time.
//!
//! Demonstrates the congestion-oriented refinement: with large scaled
//! messages, `UMC` (volume congestion) matters more than `UMMC`
//! (message counts).
//!
//! ```bash
//! cargo run --release --example comm_only_app
//! ```

use umpa::matgen::dataset;
use umpa::matgen::spmv::spmv_task_graph;
use umpa::netsim::prelude::*;
use umpa::prelude::*;

fn main() {
    let machine = MachineConfig::hopper().build();
    let parts = 256;
    let nodes = parts / machine.procs_per_node() as usize;
    let a = dataset::rgg_like(Scale::Tiny);
    let part = PartitionerKind::Patoh.partition_matrix(&a, parts, 3);
    let tg = spmv_task_graph(&a, &part, parts);
    println!(
        "rgg-like pattern: {} tasks, {} messages, {:.0} words total",
        tg.num_tasks(),
        tg.num_messages(),
        tg.total_volume()
    );

    let cfg = PipelineConfig::default();
    // The paper scales rgg messages by 256K to make volume effects
    // visible; we use a smaller factor at example scale.
    let app = AppConfig {
        des: DesConfig {
            scale: 4096.0,
            noise: 0.02,
            seed: 5,
            ..DesConfig::default()
        },
        repetitions: 5,
        ..AppConfig::default()
    };

    // Compare across five different sparse allocations, as the paper
    // does — improvements vary with allocation fragmentation.
    println!(
        "\n{:>6} {:>12} {:>12} {:>10}",
        "alloc", "DEF", "UWH", "UWH/DEF"
    );
    for seed in [11u64, 22, 33, 44, 55] {
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, seed));
        let def = map_tasks(&tg, &machine, &alloc, MapperKind::Def, &cfg);
        let uwh = map_tasks(&tg, &machine, &alloc, MapperKind::GreedyWh, &cfg);
        let t_def = comm_only_time(&machine, &tg, &def.fine_mapping, &app);
        let t_uwh = comm_only_time(&machine, &tg, &uwh.fine_mapping, &app);
        println!(
            "{:>6} {:>9.1} ms {:>9.1} ms {:>10.2}",
            seed,
            t_def.mean_us / 1000.0,
            t_uwh.mean_us / 1000.0,
            t_uwh.mean_us / t_def.mean_us
        );
    }
    println!("\nRatios below 1.0 = topology-aware mapping beat the default placement.");
}
