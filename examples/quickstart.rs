//! Quickstart: map a small task graph onto a torus and compare every
//! mapper on the paper's metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use umpa::prelude::*;

fn main() {
    // 1. A machine: 4×4×4 torus, 2 nodes per router, 4 cores per node —
    //    a scaled-down Cray XE6. `MachineConfig::hopper()` gives the
    //    real thing.
    let machine = MachineConfig::small(&[4, 4, 4], 2, 4).build();

    // 2. A sparse allocation: 16 nodes scattered over the torus, the
    //    way a busy scheduler would hand them out.
    let alloc = Allocation::generate(&machine, &AllocSpec::sparse(16, 7));
    println!(
        "allocated {} nodes, mean pairwise distance {:.2} hops",
        alloc.num_nodes(),
        alloc.mean_pairwise_hops(&machine)
    );

    // 3. An application: 64 MPI tasks in a 2-D halo-exchange pattern
    //    (each task talks to its 4 grid neighbors).
    let side = 8u32;
    let idx = |x: u32, y: u32| y * side + x;
    let mut messages = Vec::new();
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                messages.push((idx(x, y), idx(x + 1, y), 8.0));
                messages.push((idx(x + 1, y), idx(x, y), 8.0));
            }
            if y + 1 < side {
                messages.push((idx(x, y), idx(x, y + 1), 8.0));
                messages.push((idx(x, y + 1), idx(x, y), 8.0));
            }
        }
    }
    let tasks = TaskGraph::from_messages(64, messages, None);

    // 4. Run the full two-phase pipeline for every mapper and print the
    //    paper's four headline metrics.
    let cfg = PipelineConfig::default();
    println!(
        "\n{:>6}  {:>8} {:>8} {:>6} {:>8}",
        "mapper", "TH", "WH", "MMC", "MC"
    );
    for kind in MapperKind::all() {
        let out = map_tasks(&tasks, &machine, &alloc, kind, &cfg);
        let m = evaluate(&tasks, &machine, &out.fine_mapping);
        println!(
            "{:>6}  {:>8.0} {:>8.0} {:>6.0} {:>8.2}",
            kind.name(),
            m.th,
            m.wh,
            m.mmc,
            m.mc
        );
    }
    println!("\nLower is better everywhere; UG/UWH should lead WH, UMC should lead MC.");
}
